"""CSMA medium access, per-copy ARQ, and the beacon process.

Every node owns a :class:`NodeMac`: a FIFO transmit queue in front of a
carrier-sense/backoff state machine.  The :class:`LinkLayer` orchestrates
the whole population over one shared :class:`~repro.linklayer.channel.Channel`
and simulator clock, and reports back to its host (the contended engine)
through four callbacks — deliver a surviving copy, charge energy, ask
whether injected loss eats a copy, and record a frame for tracing.  The
linklayer package deliberately knows nothing about the engine's result
types; the host builds its own trace records from the raw outcome tuples.

Timing model (all knobs from :class:`~repro.linklayer.config.LinkLayerConfig`):

* A queued frame waits DIFS plus a uniform backoff in ``[0, cw)`` slots,
  then senses the channel.  Busy → defer until the sensed end-of-traffic
  plus a fresh DIFS+backoff; idle → transmit.  Sensing only hears
  transmissions at least one slot old, so near-simultaneous senders collide.
* A DATA frame under ARQ is followed by an ACK train: the ``i``-th copy's
  receiver, if it got the copy, acknowledges at ``SIFS + i*(ack_airtime +
  SIFS)`` after the frame ends.  ACKs skip carrier sense (their slot in the
  train *is* the arbitration) but still occupy the air and can collide.
* Copies still unacknowledged when the train window closes are retransmitted
  with a doubled contention window, up to ``max_retries`` attempts, after
  which they are dropped (counted as ``arq_drops``).  Receivers remember
  delivered ``copy_uid``s so a retransmission caused by a lost ACK is
  re-acknowledged but not re-delivered.
* Beacons ride the same queues as broadcast frames without ARQ.

Determinism: backoff and beacon jitter come from per-node named streams of
the :class:`~repro.simkit.rng.RandomStreams` family the host passes in; the
event order is fixed by the simulator's ``(time, sequence)`` heap.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.geometry import Point
from repro.linklayer.channel import Channel, Transmission
from repro.linklayer.config import LinkLayerConfig
from repro.linklayer.frame import ACK, BEACON, DATA, JAM, Frame, FrameCopy
from repro.linklayer.neighbors import BeaconService
from repro.linklayer.stats import LinkStats
from repro.network.graph import WirelessNetwork
from repro.packets import MulticastPacket
from repro.routing.base import NodeView
from repro.simkit.rng import RandomStreams
from repro.simkit.simulator import Simulator

#: A copy's fate at frame end: (receiver, packet, lost?).  ``lost`` covers
#: collision, receiver failure, and injected link loss alike.
CopyOutcome = Tuple[int, MulticastPacket, bool]

#: Host hook recording one frame: (session, kind, sender, start_s, retry,
#: outcomes).  Beacons report ``session=None``.
FrameHook = Callable[
    [Optional[int], str, int, float, int, Sequence[CopyOutcome]], None
]

#: Host hook delivering one surviving copy: (session, receiver, packet).
DeliverHook = Callable[[int, int, MulticastPacket], None]

#: Host hook charging one transmission's energy: (session, sender,
#: size_bytes, count_as_transmission).  ``session=None`` is infrastructure.
ChargeHook = Callable[[Optional[int], int, Optional[int], bool], None]

#: Host hook for injected link loss: (session, receiver) -> copy destroyed?
LossHook = Callable[[int, int], bool]


class _Job:
    """One frame's trip through a node's MAC queue (mutable ARQ state)."""

    __slots__ = ("kind", "session_id", "copies", "size_bytes", "arq", "retry", "cw")

    def __init__(
        self,
        kind: str,
        session_id: Optional[int],
        copies: Tuple[FrameCopy, ...],
        size_bytes: Optional[int],
        arq: bool,
        cw: int,
    ) -> None:
        self.kind = kind
        self.session_id = session_id
        self.copies = copies
        self.size_bytes = size_bytes
        self.arq = arq
        self.retry = 0
        self.cw = cw


class NodeMac:
    """One node's FIFO queue plus carrier-sense/backoff state machine."""

    __slots__ = ("_layer", "node_id", "_rng", "_queue", "_current")

    def __init__(self, layer: "LinkLayer", node_id: int, rng: np.random.Generator) -> None:
        self._layer = layer
        self.node_id = node_id
        self._rng = rng
        self._queue: Deque[_Job] = deque()
        self._current: Optional[_Job] = None

    @property
    def queue_depth(self) -> int:
        """Jobs waiting behind the one in service (if any)."""
        return len(self._queue)

    def draw_backoff_s(self, cw_slots: int) -> float:
        """DIFS plus a uniform ``[0, cw)``-slot backoff, in seconds."""
        config = self._layer.config
        slots = int(self._rng.integers(0, cw_slots))
        return config.difs_s + slots * config.slot_time_s

    def enqueue(self, job: _Job) -> None:
        self._queue.append(job)
        if self._current is None:
            self._start_next()

    def job_done(self) -> None:
        """Current job finished (delivered, dropped, or beacon sent)."""
        self._current = None
        self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            return
        self._current = self._queue.popleft()
        self._layer.simulator.schedule_after(
            self.draw_backoff_s(self._current.cw),
            self.attempt,
            label=f"mac-attempt@{self.node_id}",
        )

    def attempt(self) -> None:
        """Sense the channel; transmit if idle, defer if busy."""
        job = self._current
        if job is None:  # pragma: no cover - defensive; jobs never vanish
            return
        layer = self._layer
        busy_end = layer.channel.busy_until(
            self.node_id, layer.simulator.now, layer.config.slot_time_s
        )
        if busy_end is not None:
            layer.stats.bump(
                "backoff_defers",
                job.session_id if job.kind == DATA else None,
            )
            wait = max(busy_end - layer.simulator.now, 0.0)
            layer.simulator.schedule_after(
                wait + self.draw_backoff_s(job.cw),
                self.attempt,
                label=f"mac-defer@{self.node_id}",
            )
            return
        layer.transmit(self, job)


class LinkLayer:
    """The contended link layer shared by every node in one simulation."""

    def __init__(
        self,
        network: WirelessNetwork,
        simulator: Simulator,
        config: LinkLayerConfig,
        streams: RandomStreams,
        failed_node_ids: FrozenSet[int],
        deliver: DeliverHook,
        charge: ChargeHook,
        copy_loss: LossHook,
        on_frame: Optional[FrameHook] = None,
        advertised_location: Optional[Callable[[int], Point]] = None,
        beacon_silenced: FrozenSet[int] = frozenset(),
    ) -> None:
        self._network = network
        self.simulator = simulator
        self.config = config
        self._failed = failed_node_ids
        self._deliver = deliver
        self._charge = charge
        self._copy_loss = copy_loss
        self._on_frame = on_frame
        # Adversary seams: where a node *claims* to be in its HELLOs (a
        # location spoofer lies here) and which nodes never beacon at all
        # (suppressors).  Plain data/callables so the linklayer stays as
        # ignorant of the adversary package as it is of the engine.
        self._advertised = advertised_location or network.location_of
        self._silenced = beacon_silenced
        self.stats = LinkStats()
        self.channel = Channel(network, config.carrier_sense_factor)
        self._macs: List[NodeMac] = [
            NodeMac(self, node_id, streams.stream("backoff", node_id))
            for node_id in range(network.node_count)
        ]
        self._beacon_streams = streams
        self._beacon_service: Optional[BeaconService] = (
            BeaconService(
                network,
                config.beacon_expiry_s,
                config.warm_start,
                advertised_location=advertised_location,
                silenced=beacon_silenced,
            )
            if config.beacons
            else None
        )
        self._ack_airtime_s = network.radio.transmission_time(config.ack_bytes)
        self._next_uid = 0
        #: copy_uids already delivered to their receiver (link-level dedup).
        self._delivered_uids: Set[int] = set()

    # ------------------------------------------------------------------ API

    @property
    def beacon_service(self) -> Optional[BeaconService]:
        return self._beacon_service

    def view(self, node_id: int) -> NodeView:
        """The routing view ``node_id`` holds right now.

        Beacon-fed (possibly stale) when the beacon service runs, otherwise
        the graph oracle.
        """
        if self._beacon_service is not None:
            return self._beacon_service.view(node_id, self.simulator.now)
        return NodeView(self._network, node_id)

    def send_data(
        self,
        session_id: int,
        sender_id: int,
        copies: Sequence[Tuple[int, MulticastPacket]],
        frame_bytes: Optional[int] = None,
    ) -> None:
        """Queue one DATA frame carrying ``copies`` at ``sender_id``.

        The caller decides aggregation: call once with many copies for an
        aggregated broadcast frame, or once per copy for unicast framing.
        """
        if not copies:
            raise ValueError("a DATA frame needs at least one copy")
        frame_copies = []
        for receiver_id, packet in copies:
            frame_copies.append(FrameCopy(receiver_id, packet, self._next_uid))
            self._next_uid += 1
        job = _Job(
            DATA,
            session_id,
            tuple(frame_copies),
            frame_bytes,
            self.config.arq,
            self.config.cw_min_slots,
        )
        self._macs[sender_id].enqueue(job)

    def start_beacons(self, horizon_s: float) -> None:
        """Start every live node's HELLO process, phased uniformly at random."""
        if self._beacon_service is None:
            return
        for node_id in range(self._network.node_count):
            if node_id in self._failed or node_id in self._silenced:
                continue
            rng = self._beacon_streams.stream("beacon", node_id)
            first = float(rng.uniform(0.0, self.config.beacon_period_s))
            if first <= horizon_s:
                self.simulator.schedule_at(
                    first,
                    self._beacon_tick(node_id, horizon_s),
                    label=f"beacon@{node_id}",
                )

    def jam(self, node_id: int, on_air_s: float, size_bytes: int) -> None:
        """Key one junk frame at ``node_id`` for ``on_air_s`` seconds, now.

        Jammers do not play CSMA: the frame skips the MAC queue and goes
        straight on the air, deferring every carrier-sensing sender in
        range and colliding any overlapping reception.  Energy is charged
        to the infrastructure meter from ``size_bytes`` (the airtime knob
        is independent, so a jammer can hold the channel longer than its
        frame's nominal bits).
        """
        if on_air_s <= 0.0:
            raise ValueError(f"jam airtime must be positive, got {on_air_s}")
        frame = Frame(kind=JAM, sender_id=node_id, size_bytes=size_bytes)
        tx = self.channel.begin(frame, self.simulator.now, on_air_s)
        self._charge(None, node_id, size_bytes, False)
        self.stats.bump_adv("jam_frames")
        if self._on_frame is not None:
            self._on_frame(None, JAM, node_id, tx.start_s, 0, ())
        self.simulator.schedule_after(
            on_air_s,
            lambda: self.channel.finish(tx),
            label=f"jam-end@{node_id}",
        )

    # ------------------------------------------------------- transmit path

    def transmit(self, mac: NodeMac, job: _Job) -> None:
        """Put ``job``'s frame on the air (the channel was sensed idle)."""
        size = (
            job.size_bytes
            if job.size_bytes is not None
            else self._network.radio.message_size_bytes
        )
        frame = Frame(
            kind=job.kind,
            sender_id=mac.node_id,
            size_bytes=size,
            session_id=job.session_id,
            copies=job.copies,
            retry=job.retry,
        )
        airtime = self._network.radio.transmission_time(size)
        tx = self.channel.begin(frame, self.simulator.now, airtime)
        self._charge(job.session_id, mac.node_id, job.size_bytes, job.kind == DATA)
        if job.kind == DATA:
            self.stats.bump("data_frames", job.session_id)
            if job.retry > 0:
                self.stats.bump("retransmissions", job.session_id)
            if job.arq:
                # Virtual carrier sense: the frame's duration field reserves
                # the channel through its ACK train for everyone who can
                # hear the sender, covering the inter-ACK SIFS gaps.
                train_end = tx.end_s + self.config.sifs_s + len(job.copies) * (
                    self._ack_airtime_s + self.config.sifs_s
                )
                self.channel.reserve(
                    self.channel.interferers_of(mac.node_id), train_end
                )
        else:
            self.stats.bump("beacons_sent")
        self.simulator.schedule_after(
            airtime,
            lambda: self._finish(mac, job, tx),
            label=f"tx-end@{mac.node_id}",
        )

    def _finish(self, mac: NodeMac, job: _Job, tx: Transmission) -> None:
        """Frame left the air: judge every copy's reception."""
        self.channel.finish(tx)
        if job.kind == BEACON:
            self._finish_beacon(mac, tx)
            mac.job_done()
            return
        session_id = job.session_id
        assert session_id is not None  # DATA frames always belong to a session
        outcomes: List[CopyOutcome] = []
        survivors: List[Tuple[int, FrameCopy]] = []
        for index, copy in enumerate(job.copies):
            receiver = copy.receiver_id
            if self.channel.reception_collided(tx, receiver):
                self.stats.bump("collisions", session_id)
                lost = True
            elif receiver in self._failed:
                lost = True
            else:
                lost = self._copy_loss(session_id, receiver)
            outcomes.append((receiver, copy.packet, lost))
            if not lost:
                survivors.append((index, copy))
        if self._on_frame is not None:
            self._on_frame(
                session_id, DATA, mac.node_id, tx.start_s, job.retry, outcomes
            )
        for index, copy in survivors:
            if copy.copy_uid in self._delivered_uids:
                self.stats.bump("duplicates_suppressed", session_id)
            else:
                self._delivered_uids.add(copy.copy_uid)
                self._deliver(session_id, copy.receiver_id, copy.packet)
            if job.arq:
                self.simulator.schedule_after(
                    self.config.sifs_s
                    + index * (self._ack_airtime_s + self.config.sifs_s),
                    self._send_ack(copy, mac.node_id, session_id),
                    label=f"ack@{copy.receiver_id}",
                )
        if job.arq:
            train = self.config.sifs_s + len(job.copies) * (
                self._ack_airtime_s + self.config.sifs_s
            )
            self.simulator.schedule_after(
                train + self.config.slot_time_s,
                lambda: self._ack_timeout(mac, job),
                label=f"ack-timeout@{mac.node_id}",
            )
        else:
            mac.job_done()

    def _send_ack(
        self, copy: FrameCopy, data_sender_id: int, session_id: int
    ) -> Callable[[], None]:
        def fire() -> None:
            ack = Frame(
                kind=ACK,
                sender_id=copy.receiver_id,
                size_bytes=self.config.ack_bytes,
                session_id=session_id,
                ack_copy_uid=copy.copy_uid,
                ack_target_id=data_sender_id,
            )
            tx = self.channel.begin(ack, self.simulator.now, self._ack_airtime_s)
            self._charge(session_id, copy.receiver_id, self.config.ack_bytes, False)
            self.stats.bump("acks", session_id)
            self.simulator.schedule_after(
                self._ack_airtime_s,
                lambda: self._finish_ack(tx, copy, data_sender_id, session_id),
                label=f"ack-end@{copy.receiver_id}",
            )

        return fire

    def _finish_ack(
        self,
        tx: Transmission,
        copy: FrameCopy,
        data_sender_id: int,
        session_id: int,
    ) -> None:
        self.channel.finish(tx)
        if self._on_frame is not None:
            self._on_frame(session_id, ACK, tx.frame.sender_id, tx.start_s, 0, ())
        if self.channel.reception_collided(tx, data_sender_id):
            self.stats.bump("ack_collisions", session_id)
            return
        copy.acked = True

    def _ack_timeout(self, mac: NodeMac, job: _Job) -> None:
        """ACK train over: retransmit unacked copies or give up."""
        session_id = job.session_id
        assert session_id is not None
        pending = tuple(copy for copy in job.copies if not copy.acked)
        if not pending:
            mac.job_done()
            return
        if job.retry >= self.config.max_retries:
            self.stats.bump("arq_drops", session_id, len(pending))
            mac.job_done()
            return
        job.retry += 1
        job.copies = pending  # copy_uids survive so receivers can dedup
        job.cw = min(job.cw * 2, self.config.cw_max_slots)
        self.simulator.schedule_after(
            mac.draw_backoff_s(job.cw),
            mac.attempt,
            label=f"retry@{mac.node_id}",
        )

    # ------------------------------------------------------------- beacons

    def _beacon_tick(self, node_id: int, horizon_s: float) -> Callable[[], None]:
        def fire() -> None:
            job = _Job(
                BEACON, None, (), self.config.beacon_bytes, False,
                self.config.cw_min_slots,
            )
            self._macs[node_id].enqueue(job)
            rng = self._beacon_streams.stream("beacon", node_id)
            jitter = float(
                rng.uniform(-self.config.beacon_jitter_s, self.config.beacon_jitter_s)
            )
            next_time = self.simulator.now + self.config.beacon_period_s + jitter
            if next_time <= horizon_s:
                self.simulator.schedule_at(
                    next_time,
                    self._beacon_tick(node_id, horizon_s),
                    label=f"beacon@{node_id}",
                )

        return fire

    def _finish_beacon(self, mac: NodeMac, tx: Transmission) -> None:
        service = self._beacon_service
        assert service is not None  # beacon jobs only exist when beaconing
        sender = mac.node_id
        location = self._advertised(sender)
        if self._on_frame is not None:
            self._on_frame(None, BEACON, sender, tx.start_s, 0, ())
        for listener in self._network.listeners_of(sender):
            if listener in self._failed:
                continue
            if self.channel.reception_collided(tx, listener):
                self.stats.bump("beacon_collisions")
                continue
            service.hear_beacon(listener, sender, location, self.simulator.now)
