"""Kou–Markowsky–Berman (KMB) graph Steiner heuristic.

The paper's centralized SMT baseline [Kou et al. 1981] assumes the source
knows the entire topology and computes a near-optimal Steiner tree of the
unit-disk graph connecting itself and all destinations.  KMB is the classic
2(1 - 1/L)-approximation:

1. metric closure over the terminals (all-pairs shortest paths),
2. MST of the closure,
3. expand closure edges back into shortest paths,
4. MST of the expanded subgraph,
5. prune non-terminal leaves.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple, Union

import networkx as nx

WeightSpec = Union[str, Callable]


def _edge_weight(graph: nx.Graph, u: int, v: int, weight: WeightSpec) -> float:
    """Resolve one edge's weight under the given specification."""
    data = graph[u][v]
    if callable(weight):
        return float(weight(u, v, data))
    return float(data.get(weight, 1.0))


def kmb_steiner_tree(
    graph: nx.Graph,
    terminals: Sequence[int],
    weight: WeightSpec = "weight",
) -> nx.Graph:
    """Steiner tree of ``graph`` spanning ``terminals`` via KMB.

    Args:
        graph: Weighted undirected graph (weight attribute ``weight``).
        terminals: Node ids to span; must all be present and mutually
            reachable in ``graph``.
        weight: Edge-weight specification forwarded to networkx — an edge
            attribute name or an ``f(u, v, data)`` callable.  Pass
            ``lambda u, v, d: 1.0`` to minimize *hop counts* instead of
            meters (the metric the paper's figures report).

    Returns:
        A tree subgraph of ``graph`` containing every terminal.

    Raises:
        ValueError: If terminals are missing or mutually unreachable.
    """
    terminal_list = list(dict.fromkeys(terminals))
    if not terminal_list:
        raise ValueError("KMB needs at least one terminal")
    for t in terminal_list:
        if t not in graph:
            raise ValueError(f"terminal {t} is not a node of the graph")
    if len(terminal_list) == 1:
        tree = nx.Graph()
        tree.add_node(terminal_list[0])
        return tree

    # Step 1: metric closure restricted to the terminals.
    distances: Dict[int, Dict[int, float]] = {}
    paths: Dict[int, Dict[int, List[int]]] = {}
    for t in terminal_list:
        dist, path = nx.single_source_dijkstra(graph, t, weight=weight)
        distances[t] = dist
        paths[t] = path

    closure = nx.Graph()
    for i, a in enumerate(terminal_list):
        for b in terminal_list[i + 1 :]:
            if b not in distances[a]:
                raise ValueError(f"terminals {a} and {b} are not connected")
            closure.add_edge(a, b, weight=distances[a][b])

    # Step 2: MST of the closure.
    closure_mst = nx.minimum_spanning_tree(closure, weight="weight")

    # Step 3: expand closure edges into shortest paths of the base graph.
    expanded = nx.Graph()
    for a, b in closure_mst.edges():
        path = paths[a][b]
        for u, v in zip(path[:-1], path[1:]):
            expanded.add_edge(u, v, weight=_edge_weight(graph, u, v, weight))

    # Step 4: MST of the expanded subgraph.
    expanded_mst = nx.minimum_spanning_tree(expanded, weight="weight")

    # Step 5: prune non-terminal leaves repeatedly.
    terminal_set = set(terminal_list)
    pruned = expanded_mst.copy()
    while True:
        leaves = [
            n for n in pruned.nodes() if pruned.degree(n) <= 1 and n not in terminal_set
        ]
        if not leaves:
            break
        pruned.remove_nodes_from(leaves)
    return pruned


def tree_as_routing_schedule(
    tree: nx.Graph, root: int
) -> Dict[int, Tuple[int, ...]]:
    """Orient a tree away from ``root``: node id -> ordered child ids.

    This is the forwarding table SMT embeds into its packets (dynamic source
    multicast style): each on-tree node forwards one copy per child.
    """
    if root not in tree:
        raise ValueError(f"root {root} is not in the tree")
    schedule: Dict[int, Tuple[int, ...]] = {}
    visited = {root}
    frontier = [root]
    while frontier:
        current = frontier.pop()
        children = tuple(sorted(n for n in tree.neighbors(current) if n not in visited))
        schedule[current] = children
        for child in children:
            visited.add(child)
            frontier.append(child)
    if len(visited) != tree.number_of_nodes():
        raise ValueError("tree is disconnected from the root")
    return schedule


def tree_depths(tree: nx.Graph, root: int, targets: Iterable[int]) -> Dict[int, int]:
    """Hop depth of each target from ``root`` along the tree."""
    depths = nx.single_source_shortest_path_length(tree, root)
    return {t: depths[t] for t in targets}
