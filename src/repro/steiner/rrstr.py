"""rrSTR: the reduction-ratio heuristic for Euclidean Steiner trees.

Implements Figure 3 of the paper.  Starting from the source and the set of
destinations, the algorithm repeatedly pops the *active* destination pair
with the largest reduction ratio and either

* merges the pair under a freshly created **virtual destination** at the
  pair's exact 3-point Steiner point (the general case), or
* resolves one of the collocation degeneracies (Steiner point at the source
  or at one of the pair's endpoints), or
* — in the radio-range-aware variant (Section 3.3) — suppresses the virtual
  destination when it would only add redundant hops inside the current
  node's radio range.

Self-pairs ``(u, u)`` model the "lone remaining destination" case and are
ranked strictly below every true pair, so they are consumed last; this
matches the paper's Figure-4 walk-through where pair ``(c, c)`` is found
"at last" and edge ``sc`` closes the tree.

Known discrepancy in the paper (documented in DESIGN.md): for the
"exactly one endpoint within radio range, virtual destination *not*
beneficial" case, Figure 3's pseudocode deactivates the pair while Section
3.3's prose attaches both endpoints under the source.  The pseudocode is the
default here; ``RRStrConfig(prose_one_in_range_rule=True)`` switches to the
prose behaviour (exercised by an ablation benchmark).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import Point, distance, nearly_equal_points
from repro.perf.cache import (
    cached_fermat_point,
    cached_reduction_ratio_pairs,
    cached_reduction_ratio_point,
    caching_enabled,
)
from repro.perf.kernels import (
    MIN_BATCH,
    fermat_point_batch,
    pair_indices,
    pairwise_distances,
    reduction_ratio_batch,
    vectorized_enabled,
)
from repro.steiner.tree import SteinerTree

#: Heap key guaranteed to sort after every true pair's key (-RR <= ~0) so
#: that self-pairs are consumed only when nothing better remains.
_SELF_PAIR_KEY = 1.0


@dataclass(frozen=True)
class RRStrConfig:
    """Tunables of the rrSTR construction.

    Attributes:
        radio_aware: Apply the Section-3.3 radio-range rules (the paper's
            GMP).  ``False`` reproduces the basic algorithm (GMPnr).
        prose_one_in_range_rule: Resolve the pseudocode/prose discrepancy
            (see module docstring) in favour of the prose.
        refine: Run the re-attachment refinement after the greedy merge
            (see :func:`refine_tree`).  The greedy pass alone deactivates
            pair endpoints permanently, so a late destination can be forced
            onto a distant attachment point even when an earlier-covered
            vertex sits right next to it; measured over uniform workloads
            this leaves the raw greedy tree ~10–20% *longer* than the plain
            destination MST at k >= 10, which would invert the paper's
            Figure-11 ordering.  The refinement re-parents vertices to their
            nearest non-subtree vertex (and splices out degenerate virtual
            vertices), restoring the Steiner-grade quality the paper reports
            while reusing the RR-placed virtual points.  Documented as an
            implementation deviation in DESIGN.md; flip off for the
            ablation benchmark.
        collocation_tolerance: Distance (meters) below which a Steiner point
            counts as collocated with the source or a destination.
    """

    radio_aware: bool = True
    prose_one_in_range_rule: bool = False
    refine: bool = True
    refine_max_stretch: float = 1.05
    terminal_merge_fraction: float = 0.0
    collocation_tolerance: float = 1e-7


def rrstr(
    source_location: Point,
    destinations: Sequence[Tuple[int, Point]],
    radio_range: float,
    config: RRStrConfig | None = None,
) -> SteinerTree:
    """Build a virtual Euclidean Steiner tree rooted at the current node.

    Args:
        source_location: Location of the transmitting node (tree root).
        destinations: ``(node_id, location)`` pairs of the multicast
            destinations still to be reached.
        radio_range: The transmitting node's radio range (only used by the
            radio-aware rules).
        config: Optional :class:`RRStrConfig`; defaults to the paper's GMP
            settings (radio-aware, pseudocode rule).

    Returns:
        A :class:`SteinerTree` spanning the source and all destinations,
        possibly containing virtual interior vertices.
    """
    cfg = config or RRStrConfig()
    if radio_range <= 0:
        raise ValueError(f"radio range must be positive, got {radio_range}")
    tree = SteinerTree(source_location)
    if not destinations:
        return tree

    s = source_location
    tolerance = cfg.collocation_tolerance
    active = {}
    # Heap entries carry the Steiner point as two plain floats: the
    # (key, sequence) prefix is unique, so comparisons never reach the
    # coordinate slots, and the Point object is built lazily only for the
    # few pops that survive the activity checks below.
    heap: List[Tuple[float, int, int, int, float, float]] = []
    sequence = 0

    def push_pair(
        u_vid: int,
        v_vid: int,
        precomputed: Optional[Tuple[float, Sequence[float]]] = None,
    ) -> None:
        nonlocal sequence
        if u_vid == v_vid:
            u_loc = tree.vertex(u_vid).location
            entry = (_SELF_PAIR_KEY, sequence, u_vid, u_vid, u_loc[0], u_loc[1])
        else:
            if precomputed is None:
                rr, steiner = cached_reduction_ratio_point(
                    s, tree.vertex(u_vid).location, tree.vertex(v_vid).location
                )
                sx, sy = steiner[0], steiner[1]
            else:
                rr, (sx, sy) = precomputed
            entry = (-rr, sequence, u_vid, v_vid, sx, sy)
        heapq.heappush(heap, entry)
        sequence += 1

    def batch_pairs_against(
        u_vid: int, partner_vids: Sequence[int]
    ) -> Optional[List[Tuple[float, Sequence[float]]]]:
        """Reduction ratios of ``(u, partner)`` for every partner, in order.

        Returns ``None`` when the batch is too small to beat the kernel
        dispatch overhead (the caller then takes the scalar path); results
        are bit-identical either way.  Each element is ``(rr, (tx, ty))``
        with plain Python floats.  With caching enabled the memoized batch
        variant is used so repeated instances stay as cheap as the scalar
        warm path.
        """
        if not vectorized_enabled() or len(partner_vids) < MIN_BATCH:
            return None
        u_loc = tree.vertex(u_vid).location
        if caching_enabled():
            return cached_reduction_ratio_pairs(
                s, [(u_loc, tree.vertex(v).location) for v in partner_vids]
            )
        us = np.broadcast_to(
            np.array([u_loc[0], u_loc[1]], dtype=float), (len(partner_vids), 2)
        )
        vs = np.array(
            [tree.vertex(v).location for v in partner_vids], dtype=float
        )
        rr_arr, t_arr = reduction_ratio_batch(s, us, vs)
        return list(zip(rr_arr.tolist(), t_arr.tolist()))

    terminal_vids = []
    for ref, location in destinations:
        vid = tree.add_terminal(location, ref)
        terminal_vids.append(vid)
        active[vid] = True

    # Seed the merge heap: all k*(k-1)/2 destination pairs in one batched
    # kernel evaluation (pair_indices matches the nested-loop order below).
    # Entries carry a unique sequence tie-break, so their pop order is their
    # *sorted* order no matter how the heap was built — one heapify over the
    # full seed list replaces k*(k+1)/2 heappush calls without changing any
    # pop.
    k = len(terminal_vids)
    seeded: Optional[List[Tuple[float, Sequence[float]]]] = None
    if vectorized_enabled() and k * (k - 1) // 2 >= MIN_BATCH:
        if caching_enabled():
            locs_list = [tree.vertex(v).location for v in terminal_vids]
            seeded = cached_reduction_ratio_pairs(
                s,
                [
                    (locs_list[i], locs_list[j])
                    for i in range(k)
                    for j in range(i + 1, k)
                ],
            )
        else:
            locs = np.array(
                [tree.vertex(v).location for v in terminal_vids], dtype=float
            )
            row, col = pair_indices(k)
            rr_arr, t_arr = reduction_ratio_batch(s, locs[row], locs[col])
            seeded = list(zip(rr_arr.tolist(), t_arr.tolist()))
    pair_pos = 0
    for i, u_vid in enumerate(terminal_vids):
        u_loc = tree.vertex(u_vid).location
        heap.append((_SELF_PAIR_KEY, sequence, u_vid, u_vid, u_loc[0], u_loc[1]))
        sequence += 1
        for v_vid in terminal_vids[i + 1 :]:
            if seeded is None:
                rr, steiner = cached_reduction_ratio_point(
                    s, u_loc, tree.vertex(v_vid).location
                )
                sx, sy = steiner[0], steiner[1]
            else:
                rr, (sx, sy) = seeded[pair_pos]
            heap.append((-rr, sequence, u_vid, v_vid, sx, sy))
            sequence += 1
            pair_pos += 1
    heapq.heapify(heap)

    dead_pairs = set()

    while heap:
        _, _, u_vid, v_vid, sx, sy = heapq.heappop(heap)
        if not active.get(u_vid, False):
            continue
        if u_vid == v_vid:
            # Lone remaining destination: connect it straight to the source.
            tree.attach(0, u_vid)
            active[u_vid] = False
            continue
        if not active.get(v_vid, False):
            continue
        pair_key = (min(u_vid, v_vid), max(u_vid, v_vid))
        if pair_key in dead_pairs:
            continue
        steiner = Point(sx, sy)

        u_loc = tree.vertex(u_vid).location
        v_loc = tree.vertex(v_vid).location

        # Collocation degeneracies (Figure 3, first three non-trivial cases).
        # At WSN granularity a Steiner point within a fraction of the radio
        # range of a terminal is effectively *at* that terminal: routing
        # through the terminal saves the dedicated spur transmission.
        uv_tolerance = max(tolerance, cfg.terminal_merge_fraction * radio_range)
        if nearly_equal_points(steiner, s, tolerance):
            tree.attach(0, u_vid)
            tree.attach(0, v_vid)
            active[u_vid] = active[v_vid] = False
            continue
        if nearly_equal_points(steiner, u_loc, uv_tolerance):
            tree.attach(u_vid, v_vid)
            active[v_vid] = False
            continue
        if nearly_equal_points(steiner, v_loc, uv_tolerance):
            tree.attach(v_vid, u_vid)
            active[u_vid] = False
            continue

        if cfg.radio_aware:
            d_su = distance(s, u_loc)
            d_sv = distance(s, v_loc)
            # A virtual destination costs one extra hop; it pays off only if
            # rr + d(t,u) + d(t,v) < d(s,u) + d(s,v)   (Section 3.3).
            virtual_beneficial = (
                radio_range + distance(steiner, u_loc) + distance(steiner, v_loc)
                < d_su + d_sv
            )
            u_in_range = d_su <= radio_range
            v_in_range = d_sv <= radio_range
            if u_in_range and v_in_range:
                # Both reachable in one hop: a Steiner detour only adds hops.
                dead_pairs.add(pair_key)
                continue
            if u_in_range or v_in_range:
                near_vid = u_vid if u_in_range else v_vid
                far_vid = v_vid if u_in_range else u_vid
                if not virtual_beneficial:
                    if cfg.prose_one_in_range_rule:
                        tree.attach(0, u_vid)
                        tree.attach(0, v_vid)
                        active[u_vid] = active[v_vid] = False
                    else:
                        dead_pairs.add(pair_key)
                    continue
                # The in-range endpoint stands in for the Steiner point.
                tree.attach(near_vid, far_vid)
                active[far_vid] = False
                continue
            if distance(s, steiner) <= radio_range and not virtual_beneficial:
                # Steiner point a single hop away but not worth the detour:
                # the source itself plays the Steiner point.
                tree.attach(0, u_vid)
                tree.attach(0, v_vid)
                active[u_vid] = active[v_vid] = False
                continue

        # General case: create a virtual destination at the Steiner point.
        w_vid = tree.add_virtual(steiner)
        tree.attach(w_vid, u_vid)
        tree.attach(w_vid, v_vid)
        active[u_vid] = active[v_vid] = False
        active[w_vid] = True
        partners = [
            other_vid
            for other_vid, is_active in list(active.items())
            if is_active and other_vid != w_vid
        ]
        batched = batch_pairs_against(w_vid, partners)
        for index, other_vid in enumerate(partners):
            push_pair(w_vid, other_vid, None if batched is None else batched[index])
        push_pair(w_vid, w_vid)

    if cfg.refine:
        tree = refine_tree(
            tree,
            max_stretch=cfg.refine_max_stretch,
            radio_range=radio_range if cfg.radio_aware else None,
        )
    return tree


def refine_tree(
    tree: SteinerTree,
    max_passes: int = 12,
    max_stretch: float = 1.05,
    radio_range: float | None = None,
) -> SteinerTree:
    """Shallow-light re-attachment refinement of a virtual multicast tree.

    Repeats three length-reducing local moves until a fixpoint (or
    ``max_passes``):

    * **splice** — a virtual vertex with no children is dropped; one with a
      single child is cut out of its path (the child re-parents to the
      grandparent, which by the triangle inequality never lengthens the
      tree);
    * **re-parent** — a non-root vertex moves under a strictly closer vertex
      outside its own subtree, *provided* the move keeps its root-path
      length within ``max_stretch`` times its straight-line distance from
      the root (or improves on the current path).  The stretch guard is
      what keeps the tree *shallow-light*: unconstrained re-parenting
      degenerates toward MST-like chains, which minimizes total length but
      ruins the per-destination hop counts the paper's Figure 12 reports;
    * **relocate** — each virtual vertex is re-placed at the exact
      Fermat point (degree 3) or geometric median (higher degree) of its
      current tree neighbors.

    Terminals and the root are never removed, so the result still spans the
    source and every destination.
    """
    dead: set = set()
    # Star -> optimal-point memo shared across relocate passes: the target
    # is a pure function of the star's locations, so unchanged stars (the
    # common case after the first pass) skip the Weiszfeld iteration.
    relocate_memo: dict = {}
    improved = True
    passes = 0
    while improved and passes < max_passes:
        improved = False
        passes += 1
        for vertex in list(tree.vertices()):
            vid = vertex.vid
            if vid == 0 or vid in dead or not vertex.is_virtual:
                continue
            if tree.parent_of(vid) is None:
                continue
            kids = tree.children_of(vid)
            if len(kids) == 0:
                tree.detach(vid)
                dead.add(vid)
                improved = True
            elif len(kids) == 1:
                parent = tree.parent_of(vid)
                child = kids[0]
                tree.detach(child)
                tree.detach(vid)
                tree.attach(parent, child)
                dead.add(vid)
                improved = True
        # Locations are constant throughout the re-parent sub-pass (only the
        # relocate sub-pass moves vertices), so all candidate distances for
        # one vertex can be batched; vid == row index in ``coords``.  Root
        # path lengths are memoized between structural mutations — identical
        # floats, computed once instead of per (vertex, candidate) probe.
        scan_vertices = list(tree.vertices())
        distance_matrix: Optional[np.ndarray] = None
        if vectorized_enabled() and len(scan_vertices) >= MIN_BATCH:
            coords = np.array([v.location for v in scan_vertices], dtype=float)
            distance_matrix = pairwise_distances(coords)
        path_cache: dict = {}

        def root_path(path_vid: int) -> float:
            found = path_cache.get(path_vid)
            if found is None:
                if distance_matrix is not None:
                    # Same bottom-up accumulation as _root_path_length, with
                    # each edge read from the (bit-identical) matrix.
                    length = 0.0
                    current = path_vid
                    while current != 0:
                        up = tree.parent_of(current)
                        if up is None:
                            break
                        length += float(distance_matrix[up, current])
                        current = up
                    found = length
                else:
                    found = _root_path_length(tree, path_vid)
                path_cache[path_vid] = found
            return found

        for vertex in scan_vertices:
            vid = vertex.vid
            if vid == 0 or vid in dead:
                continue
            parent = tree.parent_of(vid)
            if parent is None:
                continue
            if distance_matrix is not None:
                lengths = distance_matrix[:, vid]
                parent_len = float(lengths[parent])
                # Only candidates strictly nearer than the current parent can
                # ever pass the ``length >= best_len - 1e-9`` filter below
                # (``best_len`` starts at ``parent_len`` and only decreases),
                # so the Python scan shrinks to the near rows — flatnonzero
                # preserves the original candidate order.
                near = np.flatnonzero(lengths < parent_len - 1e-9)
                if near.size == 0:
                    continue
                candidates = [
                    (scan_vertices[i], length)
                    for i, length in zip(near.tolist(), lengths[near].tolist())
                ]
            else:
                parent_len = distance(tree.vertex(parent).location, vertex.location)
                candidates = [
                    (c, distance(c.location, vertex.location))
                    for c in tree.vertices()
                ]
            # Subtree membership, the radial distance, and the current path
            # are pure filters — computed lazily, on the first candidate that
            # survives the (much cheaper) length filter.
            subtree: Optional[set] = None
            radial = -1.0
            current_path = -1.0
            best_vid = parent
            best_len = parent_len
            for candidate, length in candidates:
                if length >= best_len - 1e-9:
                    continue
                if candidate.vid in dead:
                    continue
                if subtree is None:
                    subtree = set(tree.subtree_vids(vid))
                    radial = distance(tree.root.location, vertex.location)
                    current_path = root_path(parent) + parent_len
                if candidate.vid in subtree:
                    continue
                # Shallow-light guard: a shorter edge is accepted only if
                # the vertex's root path stays within ``max_stretch`` of its
                # straight-line distance (or improves on the current path).
                candidate_path = root_path(candidate.vid) + length
                if (
                    candidate_path > max_stretch * radial + 1e-9
                    and candidate_path >= current_path - 1e-9
                ):
                    continue
                best_vid = candidate.vid
                best_len = length
            if best_vid != parent:
                tree.detach(vid)
                tree.attach(best_vid, vid)
                path_cache.clear()
                improved = True
        if _insert_virtuals(tree, dead, radio_range):
            improved = True
        if _relocate_virtuals(tree, dead, relocate_memo):
            improved = True
    return _rebuild_without(tree, dead)


def _insert_virtuals(
    tree: SteinerTree, dead: set, radio_range: float | None = None
) -> bool:
    """Steiner-point insertion: merge sibling pairs under a new Fermat point.

    Whenever a vertex ``p`` has two children ``c1, c2`` whose star would be
    strictly shorter when routed through the exact Fermat point ``w`` of
    ``{p, c1, c2}``, insert the virtual vertex ``w`` between them.  This is
    the same 3-point computation rrSTR's greedy pass uses — the insertion
    pass merely applies it where the greedy order missed the opportunity
    (most often right at the root, whose branches the greedy pass never
    reconsiders).  Strictly length-reducing, so the refinement loop still
    terminates.
    """
    inserted = False
    for vertex in list(tree.vertices()):
        pid = vertex.vid
        if pid in dead:
            continue
        while True:
            kids = [c for c in tree.children_of(pid) if c not in dead]
            if len(kids) < 2:
                break
            p_loc = tree.vertex(pid).location
            # Radio-aware benefit test (paper Section 3.3): the new
            # virtual costs roughly one extra hop, so it must save
            # more than a radio range of combined branch length.
            threshold = radio_range if radio_range is not None else 1e-9
            best = None
            pair_count = len(kids) * (len(kids) - 1) // 2
            if vectorized_enabled() and pair_count >= MIN_BATCH:
                best = _best_insertion_batch(tree, kids, p_loc, threshold)
            else:
                for i, c1 in enumerate(kids):
                    for c2 in kids[i + 1 :]:
                        l1 = tree.vertex(c1).location
                        l2 = tree.vertex(c2).location
                        w_loc = cached_fermat_point(p_loc, l1, l2)
                        saving = (
                            distance(p_loc, l1)
                            + distance(p_loc, l2)
                            - distance(p_loc, w_loc)
                            - distance(w_loc, l1)
                            - distance(w_loc, l2)
                        )
                        if saving > threshold and (best is None or saving > best[0]):
                            best = (saving, c1, c2, w_loc)
            if best is None:
                break
            _, c1, c2, w_loc = best
            w_vid = tree.add_virtual(w_loc)
            tree.detach(c1)
            tree.detach(c2)
            tree.attach(pid, w_vid)
            tree.attach(w_vid, c1)
            tree.attach(w_vid, c2)
            inserted = True
    return inserted


def _best_insertion_batch(
    tree: SteinerTree,
    kids: Sequence[int],
    p_loc: Point,
    threshold: float,
) -> Optional[Tuple[float, int, int, Point]]:
    """Batched variant of the sibling-pair scan in :func:`_insert_virtuals`.

    Evaluates every ``(c1, c2)`` sibling pair's Fermat point and star saving
    in one kernel call; ties select the first pair in nested-loop order, so
    the winner is bit-identical to the scalar scan.
    """
    locs = np.array([tree.vertex(c).location for c in kids], dtype=float)
    row, col = pair_indices(len(kids))
    n = len(row)
    triples = np.empty((n, 6), dtype=float)
    triples[:, 0] = p_loc[0]
    triples[:, 1] = p_loc[1]
    triples[:, 2:4] = locs[row]
    triples[:, 4:6] = locs[col]
    w = fermat_point_batch(triples)
    d_p1 = _pair_dist(triples[:, 0:2], triples[:, 2:4])
    d_p2 = _pair_dist(triples[:, 0:2], triples[:, 4:6])
    d_pw = _pair_dist(triples[:, 0:2], w)
    d_w1 = _pair_dist(w, triples[:, 2:4])
    d_w2 = _pair_dist(w, triples[:, 4:6])
    saving = (((d_p1 + d_p2) - d_pw) - d_w1) - d_w2
    valid = saving > threshold
    if not bool(valid.any()):
        return None
    idx = np.flatnonzero(valid)
    pos = int(idx[np.argmax(saving[idx])])
    return (
        float(saving[pos]),
        kids[int(row[pos])],
        kids[int(col[pos])],
        Point(float(w[pos, 0]), float(w[pos, 1])),
    )


def _pair_dist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Rowwise Euclidean distance, in the same ``sqrt(dx*dx+dy*dy)`` form as
    :func:`repro.geometry.point.distance` (bit-identical per IEEE-754)."""
    dx = a[:, 0] - b[:, 0]
    dy = a[:, 1] - b[:, 1]
    return np.sqrt(dx * dx + dy * dy)


def _root_path_length(tree: SteinerTree, vid: int) -> float:
    """Euclidean length of the tree path from the root down to ``vid``."""
    length = 0.0
    current = vid
    while current != 0:
        parent = tree.parent_of(current)
        if parent is None:
            break  # Detached vertex: treat its own chain as the whole path.
        length += distance(
            tree.vertex(parent).location, tree.vertex(current).location
        )
        current = parent
    return length


def _relocate_virtuals(
    tree: SteinerTree, dead: set, memo: Optional[dict] = None
) -> bool:
    """Move each virtual vertex to the optimal point for its tree neighbors.

    A virtual vertex's only purpose is to minimize the length of its local
    star (parent plus children).  The greedy pass places it at the Fermat
    point of ``{source, u, v}``, but once re-parenting has rearranged the
    tree the relevant star is ``{parent, children...}`` — so re-place it at
    the exact Fermat point (degree 3) or the geometric median (higher
    degree) of that star.  Strictly length-reducing.
    """
    from repro.geometry.fermat import weiszfeld_point

    moved = False
    for vertex in tree.vertices():
        vid = vertex.vid
        if vid == 0 or vid in dead or not vertex.is_virtual:
            continue
        parent = tree.parent_of(vid)
        if parent is None:
            continue
        star = [tree.vertex(parent).location] + [
            tree.vertex(c).location for c in tree.children_of(vid)
        ]
        if len(star) < 3:
            continue  # Degenerate stars are handled by the splice pass.
        star_key = tuple(star)
        target = memo.get(star_key) if memo is not None else None
        if target is None:
            if len(star) == 3:
                target = cached_fermat_point(star[0], star[1], star[2])
            else:
                target = weiszfeld_point(star)
            if memo is not None:
                memo[star_key] = target
        old_cost = sum(distance(vertex.location, p) for p in star)
        new_cost = sum(distance(target, p) for p in star)
        if new_cost < old_cost - 1e-9:
            vertex.location = target
            moved = True
    return moved


def _rebuild_without(tree: SteinerTree, dead: set) -> SteinerTree:
    """Copy ``tree`` dropping the vertices in ``dead`` (already detached)."""
    if not dead:
        return tree
    rebuilt = SteinerTree(tree.root.location)
    mapping = {0: 0}
    stack = [0]
    while stack:
        vid = stack.pop()
        for child in tree.children_of(vid):
            if child in dead:
                continue
            child_vertex = tree.vertex(child)
            if child_vertex.is_terminal:
                new_vid = rebuilt.add_terminal(child_vertex.location, child_vertex.ref)
            else:
                new_vid = rebuilt.add_virtual(child_vertex.location)
            rebuilt.attach(mapping[vid], new_vid)
            mapping[child] = new_vid
            stack.append(child)
    return rebuilt


def rrstr_tree_length(
    source_location: Point,
    destination_locations: Iterable[Point],
    radio_range: float,
    config: RRStrConfig | None = None,
) -> float:
    """Convenience: total Euclidean length of the rrSTR tree."""
    destinations = [(i, loc) for i, loc in enumerate(destination_locations)]
    return rrstr(source_location, destinations, radio_range, config).total_length()
