"""Steiner-tree machinery: the paper's core contribution plus baselines.

* :mod:`repro.steiner.tree` — the rooted, ordered virtual-tree structure all
  grouping protocols operate on (child insertion order matters: GMP's void
  splitting peels off the *last* child).
* :mod:`repro.steiner.reduction_ratio` — the paper's reduction-ratio measure
  (Section 3.1).
* :mod:`repro.steiner.rrstr` — the rrSTR heuristic, basic and
  radio-range-aware (Sections 3.2–3.3, Figure 3).
* :mod:`repro.steiner.mst` — Euclidean minimum spanning trees over terminal
  locations (LGS's grouping structure).
* :mod:`repro.steiner.kmb` — the Kou–Markowsky–Berman graph Steiner
  heuristic backing the centralized SMT baseline.
"""

from repro.steiner.tree import SteinerTree, TreeVertex, VertexKind
from repro.steiner.reduction_ratio import reduction_ratio, reduction_ratio_point
from repro.steiner.rrstr import RRStrConfig, rrstr
from repro.steiner.mst import euclidean_mst
from repro.steiner.kmb import kmb_steiner_tree
from repro.steiner.exact import optimal_steiner_length
from repro.steiner.quality import (
    StretchStats,
    TreeQualityReport,
    compare_with_mst,
    mean_length_ratio,
    tree_stretch,
)

__all__ = [
    "SteinerTree",
    "TreeVertex",
    "VertexKind",
    "reduction_ratio",
    "reduction_ratio_point",
    "RRStrConfig",
    "rrstr",
    "euclidean_mst",
    "kmb_steiner_tree",
    "optimal_steiner_length",
    "StretchStats",
    "TreeQualityReport",
    "compare_with_mst",
    "mean_length_ratio",
    "tree_stretch",
]
