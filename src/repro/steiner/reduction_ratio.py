"""The reduction-ratio measure (paper Section 3.1).

For a source ``s`` and a destination pair ``(u, v)``::

    RR(s, u, v) = 1 - (d(s,t) + d(t,u) + d(t,v)) / (d(s,u) + d(s,v))

where ``t`` is the exact Steiner (Fermat) point of ``{s, u, v}``.  RR is the
relative saving of the optimal 3-terminal Steiner tree over two independent
source-to-destination segments; the paper proves (statement only) that

* ``RR < 1/2`` always,
* among equidistant pairs, RR grows with distance from the source,
* RR grows as the angle subtended at the source shrinks.

Our property-based tests check all three.
"""

from __future__ import annotations

from typing import Tuple

from repro.geometry import Point, distance
from repro.geometry.fermat import fermat_point
from repro.geometry.primitives import is_zero


def reduction_ratio_point(s: Point, u: Point, v: Point) -> Tuple[float, Point]:
    """Reduction ratio of pair ``(u, v)`` w.r.t. source ``s`` and its Steiner point.

    Degenerate inputs collapse gracefully: if both destinations coincide
    with the source the ratio is defined as 0 (no saving possible).
    """
    t = fermat_point(s, u, v)
    direct = distance(s, u) + distance(s, v)
    if is_zero(direct):
        return 0.0, t
    steiner_length = distance(s, t) + distance(t, u) + distance(t, v)
    return 1.0 - steiner_length / direct, t


def reduction_ratio(s: Point, u: Point, v: Point) -> float:
    """Just the ratio; see :func:`reduction_ratio_point`."""
    return reduction_ratio_point(s, u, v)[0]
