"""Rooted, ordered virtual Steiner trees.

The tree a transmitting node builds (via rrSTR or, for LGS, an MST) is
*virtual*: vertices are geographic points, only some of which correspond to
actual sensor nodes.  GMP's routing step then needs, per Figure 7 of the
paper:

* the root's children ("pivots") in a stable order,
* the set of non-virtual terminals under each pivot (the pivot's "group"),
* mutation for void splitting — detach a pivot's *last* child and re-attach
  it under the root — which is why children lists record insertion order.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Tuple

from repro.geometry import Point, distance


class VertexKind(enum.Enum):
    """Role of a vertex in a virtual multicast tree."""

    SOURCE = "source"
    TERMINAL = "terminal"
    VIRTUAL = "virtual"


class TreeVertex:
    """A vertex of a :class:`SteinerTree`.

    Attributes:
        vid: Index of the vertex within its tree.
        location: Geographic position of the vertex.
        kind: Source / terminal / virtual role.
        ref: For terminals, the node id of the actual destination; ``None``
            for virtual vertices and for the source (whose id the routing
            layer already knows).
    """

    __slots__ = ("vid", "location", "kind", "ref")

    def __init__(
        self, vid: int, location: Point, kind: VertexKind, ref: Optional[int]
    ) -> None:
        self.vid = vid
        self.location = location
        self.kind = kind
        self.ref = ref

    @property
    def is_virtual(self) -> bool:
        return self.kind is VertexKind.VIRTUAL

    @property
    def is_terminal(self) -> bool:
        return self.kind is VertexKind.TERMINAL

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreeVertex(vid={self.vid}, kind={self.kind.value}, loc={self.location})"


class SteinerTree:
    """A mutable rooted tree over geographic points.

    The root (vid 0) is the current/transmitting node.  Edges are directed
    parent -> child; children keep insertion order.
    """

    def __init__(self, root_location: Point) -> None:
        self._vertices: List[TreeVertex] = [
            TreeVertex(0, root_location, VertexKind.SOURCE, None)
        ]
        self._parent: Dict[int, int] = {}
        self._children: Dict[int, List[int]] = {0: []}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @property
    def root(self) -> TreeVertex:
        return self._vertices[0]

    def add_terminal(self, location: Point, ref: int) -> int:
        """Add a destination vertex (not yet attached); returns its vid."""
        return self._add_vertex(location, VertexKind.TERMINAL, ref)

    def add_virtual(self, location: Point) -> int:
        """Add a virtual (Steiner-point) vertex; returns its vid."""
        return self._add_vertex(location, VertexKind.VIRTUAL, None)

    def _add_vertex(self, location: Point, kind: VertexKind, ref: Optional[int]) -> int:
        vid = len(self._vertices)
        self._vertices.append(TreeVertex(vid, location, kind, ref))
        self._children[vid] = []
        return vid

    def attach(self, parent_vid: int, child_vid: int) -> None:
        """Add edge ``parent -> child`` (child must currently be parentless)."""
        self._check_vid(parent_vid)
        self._check_vid(child_vid)
        if child_vid == 0:
            raise ValueError("the root cannot be attached under another vertex")
        if child_vid in self._parent:
            raise ValueError(
                f"vertex {child_vid} already has parent {self._parent[child_vid]}"
            )
        if parent_vid == child_vid:
            raise ValueError("cannot attach a vertex to itself")
        self._parent[child_vid] = parent_vid
        self._children[parent_vid].append(child_vid)

    def detach(self, child_vid: int) -> int:
        """Remove the edge to ``child_vid``'s parent; returns the old parent."""
        self._check_vid(child_vid)
        if child_vid not in self._parent:
            raise ValueError(f"vertex {child_vid} has no parent to detach from")
        parent = self._parent.pop(child_vid)
        self._children[parent].remove(child_vid)
        return parent

    def copy(self) -> "SteinerTree":
        """Structure-preserving deep copy: same vids, parents, child order.

        Vertices are fresh objects (refinement rebinds ``location``), while
        :class:`~repro.geometry.Point` instances are shared — they are
        immutable.  Used by the rrSTR tree cache: GMP's splitting step
        mutates the tree it routes with, so cached trees are handed out as
        private copies.
        """
        clone = SteinerTree.__new__(SteinerTree)
        clone._vertices = [
            TreeVertex(v.vid, v.location, v.kind, v.ref) for v in self._vertices
        ]
        clone._parent = dict(self._parent)
        clone._children = {vid: list(kids) for vid, kids in self._children.items()}
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._vertices)

    def vertex(self, vid: int) -> TreeVertex:
        self._check_vid(vid)
        return self._vertices[vid]

    def vertices(self) -> Iterator[TreeVertex]:
        return iter(self._vertices)

    def parent_of(self, vid: int) -> Optional[int]:
        """Parent vid, or ``None`` for the root / unattached vertices."""
        return self._parent.get(vid)

    def children_of(self, vid: int) -> Tuple[int, ...]:
        """Children in insertion order (GMP splits from the *last* one)."""
        self._check_vid(vid)
        return tuple(self._children[vid])

    def pivots(self) -> Tuple[int, ...]:
        """The root's children — GMP's initial pivots."""
        return self.children_of(0)

    def subtree_vids(self, vid: int) -> List[int]:
        """All vids in the subtree rooted at ``vid`` (preorder, incl. vid)."""
        self._check_vid(vid)
        out: List[int] = []
        stack = [vid]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(reversed(self._children[current]))
        return out

    def terminals_under(self, vid: int) -> List[TreeVertex]:
        """Non-virtual destinations in the subtree rooted at ``vid``.

        This is the paper's ``group(p)`` for a pivot ``p``: if ``p`` itself
        is a terminal it belongs to its own group.
        """
        return [
            self._vertices[v]
            for v in self.subtree_vids(vid)
            if self._vertices[v].is_terminal
        ]

    def edges(self) -> List[Tuple[int, int]]:
        """All ``(parent, child)`` edges."""
        return [(p, c) for c, p in self._parent.items()]

    def total_length(self) -> float:
        """Sum of Euclidean edge lengths."""
        return sum(
            distance(self._vertices[p].location, self._vertices[c].location)
            for c, p in self._parent.items()
        )

    def depth_of(self, vid: int) -> int:
        """Number of edges from the root to ``vid``."""
        self._check_vid(vid)
        depth = 0
        current = vid
        while current != 0:
            parent = self._parent.get(current)
            if parent is None:
                raise ValueError(f"vertex {vid} is not connected to the root")
            current = parent
            depth += 1
            if depth > len(self._vertices):
                raise RuntimeError("parent chain forms a cycle")
        return depth

    def is_spanning(self) -> bool:
        """Whether every non-root vertex is attached into the root component."""
        reachable = set(self.subtree_vids(0))
        return len(reachable) == len(self._vertices)

    def _check_vid(self, vid: int) -> None:
        if not (0 <= vid < len(self._vertices)):
            raise IndexError(f"no vertex with vid {vid}")
