"""Tree-quality analytics: length ratios and shallow-light stretch.

Quantifies the two properties the paper's figures trade off:

* **length** (drives Figure 11 / 14): total Euclidean length, usually
  reported relative to the destination MST that LGS uses;
* **stretch** (drives Figure 12): per-terminal ratio of tree-path length to
  straight-line distance from the root — a proxy for per-destination hops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry import Point, distance
from repro.geometry.primitives import is_zero
from repro.steiner.mst import euclidean_mst
from repro.steiner.rrstr import RRStrConfig, rrstr
from repro.steiner.tree import SteinerTree


@dataclass(frozen=True)
class StretchStats:
    """Per-terminal root-path stretch of a rooted tree."""

    mean: float
    maximum: float
    terminal_count: int


@dataclass(frozen=True)
class TreeQualityReport:
    """Side-by-side quality of an rrSTR tree and the destination MST."""

    rrstr_length: float
    mst_length: float
    rrstr_stretch: StretchStats
    mst_stretch: StretchStats
    virtual_vertex_count: int

    @property
    def length_ratio(self) -> float:
        """rrSTR length relative to the MST (< 1 means shorter)."""
        if is_zero(self.mst_length):
            return 1.0
        return self.rrstr_length / self.mst_length


def root_path_length(tree: SteinerTree, vid: int) -> float:
    """Euclidean length of the tree path from the root to ``vid``."""
    length = 0.0
    current = vid
    while current != 0:
        parent = tree.parent_of(current)
        if parent is None:
            raise ValueError(f"vertex {vid} is not attached to the root")
        length += distance(
            tree.vertex(parent).location, tree.vertex(current).location
        )
        current = parent
    return length


def tree_stretch(tree: SteinerTree) -> StretchStats:
    """Stretch statistics over the tree's terminals.

    Terminals collocated with the root are skipped (stretch undefined).
    """
    root_location = tree.root.location
    stretches: List[float] = []
    for vertex in tree.vertices():
        if not vertex.is_terminal:
            continue
        radial = distance(root_location, vertex.location)
        if radial <= 1e-12:
            continue
        stretches.append(root_path_length(tree, vertex.vid) / radial)
    if not stretches:
        return StretchStats(mean=1.0, maximum=1.0, terminal_count=0)
    return StretchStats(
        mean=sum(stretches) / len(stretches),
        maximum=max(stretches),
        terminal_count=len(stretches),
    )


def compare_with_mst(
    source: Point,
    destinations: Sequence[Tuple[int, Point]],
    radio_range: float,
    config: Optional[RRStrConfig] = None,
) -> TreeQualityReport:
    """Build both trees for one instance and report their quality."""
    tree = rrstr(source, destinations, radio_range, config)
    mst = euclidean_mst(source, destinations)
    return TreeQualityReport(
        rrstr_length=tree.total_length(),
        mst_length=mst.total_length(),
        rrstr_stretch=tree_stretch(tree),
        mst_stretch=tree_stretch(mst),
        virtual_vertex_count=sum(1 for v in tree.vertices() if v.is_virtual),
    )


def mean_length_ratio(
    instances: Sequence[Tuple[Point, Sequence[Tuple[int, Point]]]],
    radio_range: float,
    config: Optional[RRStrConfig] = None,
) -> float:
    """Average rrSTR/MST length ratio over a batch of instances."""
    if not instances:
        raise ValueError("need at least one instance")
    total = 0.0
    for source, destinations in instances:
        total += compare_with_mst(
            source, destinations, radio_range, config
        ).length_ratio
    return total / len(instances)
