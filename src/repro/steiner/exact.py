"""Exact (optimal) Euclidean Steiner trees for tiny instances.

The general problem is NP-hard [Karp 1972], but instances with up to four
points admit direct solution: a Steiner minimal tree on four points has at
most two Steiner points, and for each of the three possible pairings the
optimal full topology can be found by alternating exact 3-point Fermat
computations (the total length is convex in the Steiner point positions, so
coordinate descent converges to the global optimum of that topology).

Used as the optimality oracle in tests and quality reports: it bounds how
far rrSTR can be from optimal on the instances where "optimal" is
computable.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

from repro.geometry import Point, distance
from repro.geometry.fermat import fermat_point, fermat_total_length


def _two_steiner_topology_length(
    pair_a: Tuple[Point, Point],
    pair_b: Tuple[Point, Point],
    max_iterations: int = 200,
    tolerance: float = 1e-10,
) -> float:
    """Optimal length of the full topology (pair_a)-s1-s2-(pair_b)."""
    a1, a2 = pair_a
    b1, b2 = pair_b
    s1 = Point((a1[0] + a2[0]) / 2.0, (a1[1] + a2[1]) / 2.0)
    s2 = Point((b1[0] + b2[0]) / 2.0, (b1[1] + b2[1]) / 2.0)
    previous = float("inf")
    for _ in range(max_iterations):
        s1 = fermat_point(a1, a2, s2)
        s2 = fermat_point(b1, b2, s1)
        length = (
            distance(s1, a1)
            + distance(s1, a2)
            + distance(s1, s2)
            + distance(s2, b1)
            + distance(s2, b2)
        )
        if previous - length < tolerance:
            break
        previous = length
    return length


def _spanning_tree_lengths(points: Sequence[Point]) -> List[float]:
    """Lengths of all spanning trees over the points (no Steiner points)."""
    n = len(points)
    edges = [
        (distance(points[i], points[j]), i, j)
        for i in range(n)
        for j in range(i + 1, n)
    ]
    lengths = []
    # All labelled spanning trees of up to 4 vertices: choose n-1 edges that
    # connect everything (tiny n, brute force is fine).
    for subset in itertools.combinations(edges, n - 1):
        parent = list(range(n))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        ok = True
        for _, i, j in subset:
            ri, rj = find(i), find(j)
            if ri == rj:
                ok = False
                break
            parent[ri] = rj
        if ok:
            lengths.append(sum(w for w, _, _ in subset))
    return lengths


def optimal_steiner_length(points: Sequence[Point]) -> float:
    """Length of the Euclidean Steiner minimal tree over 1–4 points."""
    unique = list(dict.fromkeys((p[0], p[1]) for p in points))
    pts = [Point(x, y) for x, y in unique]
    if len(pts) <= 1:
        return 0.0
    if len(pts) == 2:
        return distance(pts[0], pts[1])
    if len(pts) == 3:
        return fermat_total_length(pts[0], pts[1], pts[2])
    if len(pts) != 4:
        raise ValueError(
            f"exact Steiner trees are only computed for up to 4 points, got {len(pts)}"
        )
    candidates = _spanning_tree_lengths(pts)
    # One Steiner point joining three terminals, fourth attached directly
    # to its nearest other terminal or to the Steiner point — these arise
    # as degenerate limits of the full topologies below, but including the
    # explicit single-Fermat stars costs nothing and guards convergence.
    for trio in itertools.combinations(range(4), 3):
        (i, j, k), (l,) = trio, tuple(set(range(4)) - set(trio))
        t = fermat_point(pts[i], pts[j], pts[k])
        star = sum(distance(t, pts[m]) for m in (i, j, k))
        attach = min(distance(pts[l], pts[m]) for m in (i, j, k))
        candidates.append(star + min(attach, distance(pts[l], t)))
    # Full topologies with two Steiner points: three pairings.
    pairings = [((0, 1), (2, 3)), ((0, 2), (1, 3)), ((0, 3), (1, 2))]
    for (i, j), (k, l) in pairings:
        candidates.append(
            _two_steiner_topology_length((pts[i], pts[j]), (pts[k], pts[l]))
        )
    return min(candidates)
