"""Euclidean minimum spanning trees over terminal locations.

LGS (Chen & Nahrstedt's location-guided Steiner tree) approximates the
Steiner tree by the MST of the current node and the remaining destinations —
no geographic points other than actual terminals are considered, which is
precisely the restriction the GMP paper lifts.  Prim's algorithm rooted at
the source keeps the output a rooted, ordered :class:`SteinerTree` so LGS
and GMP share all downstream grouping code.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.geometry import Point, distance
from repro.steiner.tree import SteinerTree


def euclidean_mst(
    source_location: Point,
    destinations: Sequence[Tuple[int, Point]],
) -> SteinerTree:
    """Prim MST over ``{source} ∪ destinations``, rooted at the source.

    Ties are broken toward the lower vertex index, making the construction
    deterministic for identical inputs.
    """
    tree = SteinerTree(source_location)
    if not destinations:
        return tree
    vids = [tree.add_terminal(loc, ref) for ref, loc in destinations]

    in_tree = {0}
    # best[vid] = (distance to tree, attachment vid)
    best = {
        vid: (distance(source_location, tree.vertex(vid).location), 0) for vid in vids
    }
    while best:
        next_vid = min(best, key=lambda vid: (best[vid][0], vid))
        dist_to_tree, attach_to = best.pop(next_vid)
        tree.attach(attach_to, next_vid)
        in_tree.add(next_vid)
        next_loc = tree.vertex(next_vid).location
        for vid in best:
            candidate = distance(next_loc, tree.vertex(vid).location)
            if candidate < best[vid][0]:
                best[vid] = (candidate, next_vid)
    return tree
