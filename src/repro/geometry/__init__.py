"""Computational geometry primitives used throughout the GMP reproduction.

Everything in this package is pure and deterministic: points are immutable
``Point`` named tuples in a 2-D Euclidean plane, and all predicates take an
explicit tolerance where exactness matters.  The centerpiece is
:func:`repro.geometry.fermat.fermat_point`, the exact Steiner (Fermat /
Torricelli) point of a triangle, which the rrSTR heuristic of the paper
relies on.
"""

from repro.geometry.point import (
    Point,
    angle_at,
    angle_between,
    centroid,
    distance,
    distance_sq,
    lerp,
    midpoint,
    nearly_equal_points,
    rotate_about,
    unit_toward,
)
from repro.geometry.primitives import (
    Orientation,
    bearing,
    ccw_angle_from,
    is_zero,
    orientation,
    point_on_segment,
    points_coincide,
    segment_intersection,
    segments_cross,
)
from repro.geometry.fermat import (
    fermat_point,
    fermat_total_length,
    weiszfeld_point,
)
from repro.geometry.hull import convex_hull, polygon_area

__all__ = [
    "Point",
    "angle_at",
    "angle_between",
    "centroid",
    "distance",
    "distance_sq",
    "lerp",
    "midpoint",
    "nearly_equal_points",
    "rotate_about",
    "unit_toward",
    "Orientation",
    "bearing",
    "ccw_angle_from",
    "is_zero",
    "orientation",
    "point_on_segment",
    "points_coincide",
    "segment_intersection",
    "segments_cross",
    "fermat_point",
    "fermat_total_length",
    "weiszfeld_point",
    "convex_hull",
    "polygon_area",
]
