"""Convex hulls and polygon areas.

Used by topology diagnostics (how much of the deployment area a void covers)
and by tests that need an outer boundary to reason about perimeter walks.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry.point import Point


def convex_hull(points: Sequence[Point]) -> List[Point]:
    """Convex hull in counterclockwise order (Andrew's monotone chain).

    Collinear boundary points are dropped.  For fewer than three distinct
    points the distinct points themselves are returned.
    """
    unique = sorted(set((p[0], p[1]) for p in points))
    if len(unique) <= 2:
        return [Point(x, y) for x, y in unique]

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: List = []
    for p in unique:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: List = []
    for p in reversed(unique):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    return [Point(x, y) for x, y in hull]


def polygon_area(polygon: Sequence[Point]) -> float:
    """Absolute area of a simple polygon via the shoelace formula."""
    if len(polygon) < 3:
        return 0.0
    twice_area = 0.0
    for i, current in enumerate(polygon):
        nxt = polygon[(i + 1) % len(polygon)]
        twice_area += current[0] * nxt[1] - nxt[0] * current[1]
    return abs(twice_area) / 2.0
