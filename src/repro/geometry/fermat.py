"""Exact Steiner (Fermat / Torricelli) point of three points.

The rrSTR heuristic (paper Section 3) leans on the classical fact that the
Euclidean Steiner tree of exactly three terminals is computable in closed
form [Neuberg 1886; Hwang et al. 1992]:

* if one interior angle of the triangle is at least 120 degrees, the Steiner
  point coincides with that vertex;
* otherwise it is the unique interior point seeing every side under 120
  degrees, constructed as the intersection of two Simpson lines (vertex to
  the apex of the outward equilateral triangle on the opposite side).

:func:`weiszfeld_point` provides an independent iterative solver used by the
property-based tests to cross-check the construction.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.geometry.point import Point, angle_at, distance, rotate_about
from repro.geometry.primitives import is_zero, points_coincide, segment_intersection

#: 120 degrees, the Fermat-point angle threshold.
_DEGENERATE_ANGLE = 2.0 * math.pi / 3.0


def _outward_apex(base_a: Point, base_b: Point, opposite: Point) -> Point:
    """Apex of the equilateral triangle on ``base_a base_b`` away from ``opposite``."""
    candidate_ccw = rotate_about(base_b, base_a, math.pi / 3.0)
    candidate_cw = rotate_about(base_b, base_a, -math.pi / 3.0)
    if distance(candidate_ccw, opposite) >= distance(candidate_cw, opposite):
        return candidate_ccw
    return candidate_cw


def fermat_point(a: Point, b: Point, c: Point) -> Point:
    """Exact Fermat/Torricelli point of the triangle ``abc``.

    Handles every degeneracy that arises inside rrSTR: coincident vertices,
    collinear triples (the middle point is the minimizer) and wide angles
    (the wide vertex is the minimizer).
    """
    # Coincident-vertex degeneracies: the repeated vertex is optimal, since
    # the problem collapses to a two-point (or one-point) median.
    if points_coincide(a, b) or points_coincide(a, c):
        return Point(a[0], a[1])
    if points_coincide(b, c):
        return Point(b[0], b[1])

    # Wide-angle (>= 120 degrees) case, which also covers collinear triples:
    # the wide vertex itself is the Fermat point.
    if angle_at(a, b, c) >= _DEGENERATE_ANGLE - 1e-12:
        return Point(a[0], a[1])
    if angle_at(b, a, c) >= _DEGENERATE_ANGLE - 1e-12:
        return Point(b[0], b[1])
    if angle_at(c, a, b) >= _DEGENERATE_ANGLE - 1e-12:
        return Point(c[0], c[1])

    # General case: intersect two Simpson lines.  Each Simpson line runs from
    # a vertex to the apex of the outward equilateral triangle erected on the
    # opposite side, and all three concur at the Fermat point.
    apex_bc = _outward_apex(b, c, a)
    apex_ca = _outward_apex(c, a, b)
    hit = segment_intersection(a, apex_bc, b, apex_ca)
    if hit is None:
        # Numerical grazing near the 120-degree boundary; fall back to the
        # iterative solver, which is robust there.
        hit = weiszfeld_point((a, b, c))
    # Numerical safety net: the true Fermat point is never worse than any
    # vertex, so if precision loss (e.g. near-degenerate or subnormal
    # triangles) produced a bad construction, fall back to the best vertex.
    def star(p: Point) -> float:
        return distance(p, a) + distance(p, b) + distance(p, c)

    best = min((a, b, c, hit), key=star)
    return Point(best[0], best[1])


def fermat_total_length(a: Point, b: Point, c: Point) -> float:
    """Length of the optimal 3-terminal Steiner tree (star through the Fermat point)."""
    t = fermat_point(a, b, c)
    return distance(t, a) + distance(t, b) + distance(t, c)


def weiszfeld_point(
    points: Sequence[Point],
    max_iterations: int = 200,
    tolerance: float = 1e-12,
) -> Point:
    """Geometric median of ``points`` via Weiszfeld iteration.

    For three points the geometric median *is* the Fermat point, so this is
    the reference oracle for :func:`fermat_point`.  Vertex-sticking (the
    iterate landing on an input point) is handled with the standard
    subgradient check: if the pull of the remaining points does not exceed
    the vertex's own weight, the vertex is optimal.
    """
    if not points:
        raise ValueError("geometric median of no points is undefined")
    current = Point(
        sum(p[0] for p in points) / len(points),
        sum(p[1] for p in points) / len(points),
    )
    for _ in range(max_iterations):
        num_x = 0.0
        num_y = 0.0
        denom = 0.0
        stuck_vertex: Tuple[float, float] | None = None
        for p in points:
            d = distance(current, p)
            if d < 1e-15:
                stuck_vertex = p
                continue
            w = 1.0 / d
            num_x += p[0] * w
            num_y += p[1] * w
            denom += w
        if stuck_vertex is not None:
            # Subgradient test at the vertex.
            pull_x = 0.0
            pull_y = 0.0
            for p in points:
                d = distance(current, p)
                if d < 1e-15:
                    continue
                pull_x += (p[0] - current[0]) / d
                pull_y += (p[1] - current[1]) / d
            if math.hypot(pull_x, pull_y) <= 1.0 + 1e-12:
                return current
            if is_zero(denom):
                return current
        if is_zero(denom):
            return current
        nxt = Point(num_x / denom, num_y / denom)
        if distance(nxt, current) <= tolerance:
            return nxt
        current = nxt
    return current
