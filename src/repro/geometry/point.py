"""Immutable 2-D points and basic metric helpers.

A :class:`Point` is a ``NamedTuple`` so it unpacks, hashes and compares like
a plain ``(x, y)`` tuple while keeping attribute access readable.  All
distances are Euclidean; the wireless-network model of the paper (Section 2)
lives entirely in this plane.
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple

#: Default tolerance for "collocated" point tests.  The paper's rrSTR
#: algorithm branches on Steiner points being collocated with the source or a
#: destination; coordinates in our experiments are on the order of 1e3
#: meters, so 1e-9 relative slack is far below any meaningful separation.
DEFAULT_TOLERANCE = 1e-9


class Point(NamedTuple):
    """A point in the 2-D Euclidean plane (coordinates in meters)."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":  # type: ignore[override]
        return Point(self.x + other[0], self.y + other[1])

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other[0], self.y - other[1])

    def scaled(self, factor: float) -> "Point":
        """Return this point's position vector scaled by ``factor``."""
        return Point(self.x * factor, self.y * factor)

    def norm(self) -> float:
        """Euclidean norm of the position vector."""
        return math.hypot(self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between ``a`` and ``b``.

    Computed as ``sqrt(dx*dx + dy*dy)`` rather than ``math.hypot``: IEEE-754
    multiply/add/sqrt are correctly rounded and therefore reproduced
    bit-for-bit by the batched NumPy kernels (:mod:`repro.perf.kernels`),
    whereas CPython's ``math.hypot`` and ``numpy.hypot`` use different
    algorithms and disagree in the last ulp for ~0.6% of inputs.  Experiment
    coordinates are bounded (~1e3 m), so the squaring cannot over- or
    underflow.
    """
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return math.sqrt(dx * dx + dy * dy)


def distance_sq(a: Point, b: Point) -> float:
    """Squared Euclidean distance (avoids the sqrt for comparisons)."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    """Midpoint of segment ``ab``."""
    return Point((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)


def lerp(a: Point, b: Point, t: float) -> Point:
    """Linear interpolation from ``a`` (t=0) to ``b`` (t=1)."""
    return Point(a[0] + (b[0] - a[0]) * t, a[1] + (b[1] - a[1]) * t)


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points.

    GMP's perimeter mode routes toward the *average location* of the void
    destinations (Section 4.1, step 2); this is that average.
    """
    xs = 0.0
    ys = 0.0
    count = 0
    for p in points:
        xs += p[0]
        ys += p[1]
        count += 1
    if count == 0:
        raise ValueError("centroid of an empty point collection is undefined")
    return Point(xs / count, ys / count)


def nearly_equal_points(a: Point, b: Point, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """Whether two points are collocated up to ``tolerance``."""
    return abs(a[0] - b[0]) <= tolerance and abs(a[1] - b[1]) <= tolerance


def angle_between(u: Point, v: Point) -> float:
    """Angle in radians between two position vectors, in ``[0, pi]``."""
    nu = math.hypot(u[0], u[1])
    nv = math.hypot(v[0], v[1])
    if nu == 0.0 or nv == 0.0:
        raise ValueError("angle with a zero-length vector is undefined")
    # atan2 of (|cross|, dot) avoids the norm product, which can underflow
    # to zero for subnormal coordinates even though both norms are nonzero.
    dot = u[0] * v[0] + u[1] * v[1]
    cross = u[0] * v[1] - u[1] * v[0]
    return math.atan2(abs(cross), dot)


def angle_at(vertex: Point, a: Point, b: Point) -> float:
    """Interior angle at ``vertex`` of the triangle ``(vertex, a, b)``.

    Used to detect the degenerate Fermat-point case where one triangle angle
    is at least 120 degrees.
    """
    return angle_between(
        Point(a[0] - vertex[0], a[1] - vertex[1]),
        Point(b[0] - vertex[0], b[1] - vertex[1]),
    )


def rotate_about(p: Point, pivot: Point, theta: float) -> Point:
    """Rotate point ``p`` around ``pivot`` by ``theta`` radians (CCW)."""
    cos_t = math.cos(theta)
    sin_t = math.sin(theta)
    dx = p[0] - pivot[0]
    dy = p[1] - pivot[1]
    return Point(
        pivot[0] + dx * cos_t - dy * sin_t,
        pivot[1] + dx * sin_t + dy * cos_t,
    )


def unit_toward(src: Point, dst: Point) -> Point:
    """Unit vector pointing from ``src`` toward ``dst``."""
    d = distance(src, dst)
    if d == 0.0:
        raise ValueError("unit vector between coincident points is undefined")
    return Point((dst[0] - src[0]) / d, (dst[1] - src[1]) / d)
