"""Orientation and segment predicates for planar routing.

GPSR-style perimeter forwarding (used by GMP and PBM when a packet hits a
void) needs three geometric tools:

* counterclockwise angular sweeps around a node (the right-hand rule),
* robust segment-intersection tests (face changes happen where the traversed
  face edge crosses the line from the perimeter entry point to the target),
* orientation predicates backing both of the above.
"""

from __future__ import annotations

import enum
import math
from typing import Optional

from repro.geometry.point import Point

_EPS = 1e-12


def is_zero(value: float, tolerance: float = _EPS) -> bool:
    """Whether a scalar (a distance, determinant, weight sum) is zero.

    The sanctioned replacement for ``value == 0.0`` on float quantities:
    exact float equality on computed distances is hash-of-the-rounding
    luck, not geometry.  The default tolerance matches the orientation
    predicates in this module.
    """
    return abs(value) <= tolerance


def points_coincide(a: Point, b: Point, tolerance: float = _EPS) -> bool:
    """Whether two points are the same location up to ``tolerance``.

    Componentwise (Chebyshev) test, so no intermediate ``hypot`` can
    underflow for subnormal coordinates.
    """
    return abs(a[0] - b[0]) <= tolerance and abs(a[1] - b[1]) <= tolerance


class Orientation(enum.IntEnum):
    """Orientation of an ordered point triple."""

    CLOCKWISE = -1
    COLLINEAR = 0
    COUNTERCLOCKWISE = 1


def orientation(a: Point, b: Point, c: Point, tolerance: float = _EPS) -> Orientation:
    """Orientation of the triple ``(a, b, c)``.

    The cross product is compared against a tolerance scaled by the magnitude
    of the operands so that the predicate stays meaningful for coordinates of
    any magnitude.
    """
    cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    scale = max(
        abs(b[0] - a[0]), abs(b[1] - a[1]), abs(c[0] - a[0]), abs(c[1] - a[1]), 1.0
    )
    if abs(cross) <= tolerance * scale * scale:
        return Orientation.COLLINEAR
    return Orientation.COUNTERCLOCKWISE if cross > 0 else Orientation.CLOCKWISE


def point_on_segment(p: Point, a: Point, b: Point, tolerance: float = 1e-9) -> bool:
    """Whether ``p`` lies on the closed segment ``ab``."""
    if orientation(a, b, p) != Orientation.COLLINEAR:
        return False
    return (
        min(a[0], b[0]) - tolerance <= p[0] <= max(a[0], b[0]) + tolerance
        and min(a[1], b[1]) - tolerance <= p[1] <= max(a[1], b[1]) + tolerance
    )


def segments_cross(p1: Point, p2: Point, q1: Point, q2: Point) -> bool:
    """Whether closed segments ``p1p2`` and ``q1q2`` intersect."""
    o1 = orientation(p1, p2, q1)
    o2 = orientation(p1, p2, q2)
    o3 = orientation(q1, q2, p1)
    o4 = orientation(q1, q2, p2)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == Orientation.COLLINEAR and point_on_segment(q1, p1, p2):
        return True
    if o2 == Orientation.COLLINEAR and point_on_segment(q2, p1, p2):
        return True
    if o3 == Orientation.COLLINEAR and point_on_segment(p1, q1, q2):
        return True
    if o4 == Orientation.COLLINEAR and point_on_segment(p2, q1, q2):
        return True
    return False


def segment_intersection(
    p1: Point, p2: Point, q1: Point, q2: Point
) -> Optional[Point]:
    """Intersection point of segments ``p1p2`` and ``q1q2``, if any.

    Returns ``None`` when the segments do not intersect.  For collinear
    overlapping segments an arbitrary shared point is returned (an endpoint
    of the overlap) — perimeter forwarding only needs *a* crossing witness.
    """
    r = (p2[0] - p1[0], p2[1] - p1[1])
    s = (q2[0] - q1[0], q2[1] - q1[1])
    denom = r[0] * s[1] - r[1] * s[0]
    qp = (q1[0] - p1[0], q1[1] - p1[1])
    if abs(denom) < _EPS:
        # Parallel.  Check collinear overlap via on-segment endpoint tests.
        for candidate in (q1, q2):
            if point_on_segment(candidate, p1, p2):
                return Point(candidate[0], candidate[1])
        for candidate in (p1, p2):
            if point_on_segment(candidate, q1, q2):
                return Point(candidate[0], candidate[1])
        return None
    t = (qp[0] * s[1] - qp[1] * s[0]) / denom
    u = (qp[0] * r[1] - qp[1] * r[0]) / denom
    slack = 1e-12
    if -slack <= t <= 1.0 + slack and -slack <= u <= 1.0 + slack:
        return Point(p1[0] + t * r[0], p1[1] + t * r[1])
    return None


def bearing(origin: Point, target: Point) -> float:
    """Angle of the vector ``origin -> target`` in ``[0, 2*pi)``."""
    theta = math.atan2(target[1] - origin[1], target[0] - origin[0])
    if theta < 0.0:
        theta += 2.0 * math.pi
    return theta


def ccw_angle_from(origin: Point, reference: Point, candidate: Point) -> float:
    """Counterclockwise sweep angle at ``origin`` from ``reference`` to ``candidate``.

    Result is in ``(0, 2*pi]``; a candidate collinear with the reference in
    the same direction maps to ``2*pi`` rather than 0 so that, under the
    right-hand rule, the reverse edge is taken only as a last resort.
    """
    sweep = bearing(origin, candidate) - bearing(origin, reference)
    while sweep <= 0.0:
        sweep += 2.0 * math.pi
    while sweep > 2.0 * math.pi:
        sweep -= 2.0 * math.pi
    return sweep
