"""SMT: the centralized Steiner-tree source-routing baseline.

The paper's SMT (Section 5) assumes the source knows the position of *every*
node in the network; it computes a near-optimal Steiner tree of the
unit-disk graph with the Kou–Markowsky–Berman heuristic [16] and embeds the
routing tree in the packet, dynamic-source-multicast style.  Each on-tree
node simply forwards one copy per child, carrying the destinations living in
that child's subtree.

Being centralized, SMT is the single protocol allowed to look at the whole
:class:`WirelessNetwork` — through :meth:`prepare_task`, run once per task
before the source transmits (the paper includes it "for comparison purposes
only").
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.packets import Destination, MulticastPacket
from repro.routing.base import ForwardDecision, NodeView, RoutingProtocol
from repro.network.graph import WirelessNetwork
from repro.steiner.kmb import kmb_steiner_tree, tree_as_routing_schedule


class SMTProtocol(RoutingProtocol):
    """Centralized KMB Steiner tree with source routing.

    ``metric="distance"`` (default) minimizes total Euclidean length — the
    natural reading of "a close to optimal Steiner tree" computed by the
    Kou–Markowsky–Berman heuristic on the weighted unit-disk graph;
    ``"hops"`` minimizes the transmission count instead (a strictly
    stronger baseline on the paper's hop metric, kept as an ablation).
    """

    name = "SMT"

    def __init__(self, metric: str = "distance") -> None:
        if metric not in ("hops", "distance"):
            raise ValueError(f"unknown SMT metric {metric!r}")
        self.metric = metric
        self._schedule: Dict[int, Tuple[int, ...]] = {}
        self._subtree_destinations: Dict[int, Set[int]] = {}
        self._prepared_for: Tuple[int, Tuple[int, ...]] | None = None

    def prepare_task(
        self,
        network: WirelessNetwork,
        source_id: int,
        destination_ids: Tuple[int, ...],
    ) -> None:
        """Compute the global KMB tree and the per-node forwarding schedule."""
        terminals = [source_id] + [d for d in destination_ids if d != source_id]
        weight = "weight" if self.metric == "distance" else (lambda u, v, d: 1.0)
        tree = kmb_steiner_tree(network.to_networkx(), terminals, weight=weight)
        self._schedule = tree_as_routing_schedule(tree, source_id)
        # For each on-tree node, which destinations live strictly below it.
        self._subtree_destinations = {}
        destination_set = set(destination_ids)

        def collect(node: int) -> Set[int]:
            below: Set[int] = set()
            for child in self._schedule.get(node, ()):
                child_set = collect(child)
                if child in destination_set:
                    child_set = child_set | {child}
                below |= child_set
            self._subtree_destinations[node] = below
            return below

        collect(source_id)
        self._prepared_for = (source_id, tuple(destination_ids))

    def handle(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        if self._prepared_for is None:
            raise RuntimeError("SMTProtocol.handle called before prepare_task")
        remaining = {d.node_id: d for d in packet.destinations}
        decisions: List[ForwardDecision] = []
        for child in self._schedule.get(view.node_id, ()):
            below = self._subtree_destinations.get(child, set()) | {child}
            # Sorted: the embedded destination list must not depend on the
            # interpreter's hash seed, or traces stop being replayable.
            group: List[Destination] = [
                remaining[d] for d in sorted(below) if d in remaining
            ]
            if not group:
                continue  # Nothing left to serve down this branch.
            decisions.append(
                ForwardDecision(child, packet.with_destinations(group))
            )
        return decisions
