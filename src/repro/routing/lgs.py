"""Location-guided tree protocols LGS and LGK [Chen & Nahrstedt 2002].

LGS approximates the multicast tree with the Euclidean **MST of the current
node and the destinations** — no other geographic points are considered,
which is the restriction GMP lifts.  Crucially (and this is the behaviour
the GMP paper dissects in Section 5.2 / Figure 13), destinations are only
re-partitioned at *subtree roots*, which are always actual destinations:

* a splitting node computes the MST over itself and the remaining
  destinations; each child subtree becomes one packet copy whose
  **subdestination** is the child (a destination);
* intermediate nodes forward the copy greedily toward that subdestination
  without re-splitting — so destinations inside a subtree are visited
  sequentially, which is what inflates LGS's per-destination hop counts;
* when the copy reaches its subdestination (delivered en route), the
  subtree root repeats the process for what remains.

LGS performs **no void recovery**: when greedy forwarding stalls, the
copy's remaining deliveries fail (hence LGS's dominant failure counts in
the paper's Figure 15).

LGK is the companion k-ary construction from the same paper, included as an
extension: the k destinations nearest the splitting node become subtree
roots and every remaining destination joins its closest root.
"""

from __future__ import annotations

from typing import Dict, List

from repro.geometry import distance
from repro.packets import Destination, MulticastPacket
from repro.routing.base import ForwardDecision, NodeView, RoutingProtocol
from repro.routing.greedy import greedy_next_hop
from repro.steiner.mst import euclidean_mst


class LGSProtocol(RoutingProtocol):
    """Location-guided Steiner (MST-based) multicast."""

    name = "LGS"

    def handle(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        target = packet.subdestination
        if target is not None and target.node_id != view.node_id:
            # Mid-subtree: keep unicasting toward the pinned subtree root.
            next_hop = greedy_next_hop(view, target.location)
            if next_hop is None:
                return []  # Void with no recovery: this copy is lost.
            return [ForwardDecision(next_hop, packet)]
        # At the source or at a subtree root: (re-)partition via the MST.
        dest_by_ref: Dict[int, Destination] = {
            d.node_id: d for d in packet.destinations
        }
        tree = euclidean_mst(
            view.location, [(d.node_id, d.location) for d in packet.destinations]
        )
        decisions: List[ForwardDecision] = []
        for child_vid in tree.pivots():
            child = tree.vertex(child_vid)
            group = [dest_by_ref[t.ref] for t in tree.terminals_under(child_vid)]
            root = dest_by_ref[child.ref]
            next_hop = greedy_next_hop(view, root.location)
            if next_hop is None:
                continue  # LGS assumes a next hop exists; the group is lost.
            decisions.append(
                ForwardDecision(
                    next_hop, packet.with_destinations(group, subdestination=root)
                )
            )
        return decisions


class LGKProtocol(RoutingProtocol):
    """Location-guided k-ary tree multicast (extension baseline)."""

    def __init__(self, fanout: int = 2) -> None:
        if fanout < 1:
            raise ValueError(f"fanout must be at least 1, got {fanout}")
        self.fanout = fanout
        self.name = f"LGK{fanout}"

    def handle(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        target = packet.subdestination
        if target is not None and target.node_id != view.node_id:
            next_hop = greedy_next_hop(view, target.location)
            if next_hop is None:
                return []
            return [ForwardDecision(next_hop, packet)]
        destinations = list(packet.destinations)
        # The k destinations nearest the splitting node root the subtrees.
        roots = sorted(
            destinations, key=lambda d: distance(view.location, d.location)
        )[: self.fanout]
        groups: Dict[int, List[Destination]] = {r.node_id: [r] for r in roots}
        for dest in destinations:
            if any(dest.node_id == r.node_id for r in roots):
                continue
            closest_root = min(
                roots, key=lambda r: distance(r.location, dest.location)
            )
            groups[closest_root.node_id].append(dest)
        decisions: List[ForwardDecision] = []
        for root in roots:
            next_hop = greedy_next_hop(view, root.location)
            if next_hop is None:
                continue  # Same void behaviour as LGS: the group is lost.
            decisions.append(
                ForwardDecision(
                    next_hop,
                    packet.with_destinations(
                        groups[root.node_id], subdestination=root
                    ),
                )
            )
        return decisions
