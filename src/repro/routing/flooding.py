"""Blind flooding: the delivery upper bound / energy worst case.

Every node rebroadcasts each task's packet once to all of its neighbors.
Flooding reaches every node in the source's connected component (within the
TTL) no matter how the protocol-level geometry looks, so it upper-bounds
delivery — at maximal energy cost.  Included as the reference point for the
robustness experiments: under heavy link loss, flooding's redundancy is the
only thing that still delivers.

Flooding needs duplicate suppression (else packets multiply forever); a
real implementation uses (source, sequence-number) caches, which we model
with a per-task seen-set reset in :meth:`prepare_task`.  That makes the
protocol *soft-state*, like the caches of real flooding — not stateless in
the paper's sense.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.packets import MulticastPacket
from repro.routing.base import ForwardDecision, NodeView, RoutingProtocol
from repro.network.graph import WirelessNetwork


class FloodingProtocol(RoutingProtocol):
    """Rebroadcast-once flooding with per-task duplicate suppression."""

    name = "FLOOD"
    duplicates_allowed = True

    def __init__(self) -> None:
        self._forwarded_by: Set[int] = set()

    def prepare_task(
        self,
        network: WirelessNetwork,
        source_id: int,
        destination_ids: Tuple[int, ...],
    ) -> None:
        """Reset the duplicate-suppression cache for a new task."""
        self._forwarded_by = set()

    def handle(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        if view.node_id in self._forwarded_by:
            return []  # Already rebroadcast this task's packet.
        self._forwarded_by.add(view.node_id)
        return [
            ForwardDecision(neighbor, packet) for neighbor in view.neighbor_ids
        ]
