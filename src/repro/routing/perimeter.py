"""Perimeter-mode forwarding (paper Section 4.1).

When no neighbor offers progress toward a group of destinations, the packet
walks the boundary of the void with the right-hand rule on the locally
planarized (Gabriel) graph — the classic GPSR recovery [Karp & Kung 2000],
which the paper adopts with a multi-destination twist: the walk targets the
*average location* of the group's destinations.

State carried in the packet (:class:`repro.packets.PerimeterState`):

* ``target`` — the average destination location ``D``;
* ``entry_location`` (``Lp``) and ``entry_total_distance`` — where the
  packet entered perimeter mode and how far (summed over the group) the
  destinations were from there; a node may resume greedy operation only
  once it beats that distance ("a node that is closer to the destination
  than the point where the packet enters the perimeter mode", Section 4.1);
* ``came_from`` — previous-hop location, the right-hand-rule reference;
* ``face_crossing`` (``Lf``) — the best crossing of the walked face with the
  ``Lp -> D`` segment, governing face changes;
* ``first_edge`` — re-traversing the first edge of the current face without
  a face change means the target is unreachable and the packet is dropped.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.geometry import Point, centroid, distance, nearly_equal_points
from repro.geometry.primitives import ccw_angle_from, segment_intersection
from repro.packets import Destination, PerimeterState
from repro.routing.base import NodeView
from repro.routing.greedy import total_distance

#: Tolerance for "this crossing is strictly closer to the target".
_FACE_EPSILON = 1e-9


class PerimeterUnreachable(Exception):
    """The walk toured an entire face without progress: target unreachable."""


def enter_perimeter(view: NodeView, group: Sequence[Destination]) -> PerimeterState:
    """Fresh perimeter state for a void group at the current node."""
    if not group:
        raise ValueError("cannot enter perimeter mode with no destinations")
    locations = [d.location for d in group]
    return PerimeterState(
        target=centroid(locations),
        entry_location=view.location,
        entry_total_distance=total_distance(view.location, locations),
        came_from=None,
        face_crossing=None,
        first_edge=None,
    )


def _reference_point(view: NodeView, state: PerimeterState) -> Point:
    """Angular reference for the right-hand rule at this node.

    The previous hop when there is one; otherwise (just entered perimeter
    mode) the line toward the target, as in GPSR's perimeter-mode entry.
    """
    if state.came_from is not None:
        return state.came_from
    if not nearly_equal_points(state.target, view.location, 1e-12):
        return state.target
    # Degenerate: we are exactly at the target point.  Any fixed direction
    # serves as reference; the walk will be governed by face changes.
    return Point(view.location[0] + 1.0, view.location[1])


def perimeter_next_hop(
    view: NodeView, state: PerimeterState
) -> Optional[Tuple[int, PerimeterState]]:
    """One right-hand-rule step; returns ``(next_hop, advanced_state)``.

    Returns ``None`` when the walk proves the target unreachable (full face
    toured, or the node has no planar neighbors); the caller drops the
    packet and the task records a failure — this is the mechanism behind
    the paper's Figure-15 failure counts.
    """
    planar = view.planar_neighbor_ids
    if not planar:
        return None
    here = view.location
    reference = _reference_point(view, state)
    ordered = sorted(
        planar,
        key=lambda n: ccw_angle_from(here, reference, view.location_of(n)),
    )
    face_crossing = (
        state.face_crossing if state.face_crossing is not None else state.entry_location
    )
    best_crossing_dist = distance(face_crossing, state.target)
    first_edge = state.first_edge
    changed_face = False

    for neighbor_id in ordered:
        neighbor_loc = view.location_of(neighbor_id)
        crossing = segment_intersection(
            here, neighbor_loc, state.entry_location, state.target
        )
        if (
            crossing is not None
            and distance(crossing, state.target) < best_crossing_dist - _FACE_EPSILON
        ):
            # GPSR face change: do not traverse the crossing edge; note the
            # crossing and continue the sweep onto the inner face.
            face_crossing = crossing
            best_crossing_dist = distance(crossing, state.target)
            changed_face = True
            continue
        edge = (here, neighbor_loc)
        if (
            not changed_face
            and first_edge is not None
            and nearly_equal_points(edge[0], first_edge[0], 1e-9)
            and nearly_equal_points(edge[1], first_edge[1], 1e-9)
        ):
            # About to re-traverse the first edge of this face: the face has
            # been toured completely without reaching the target.
            return None
        new_state = state.advanced(
            came_from=here,
            face_crossing=face_crossing,
            first_edge=edge if (changed_face or first_edge is None) else first_edge,
        )
        return neighbor_id, new_state
    return None
