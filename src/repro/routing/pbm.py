"""PBM: Position-Based Multicast [Mauve et al., MOBIHOC 2003 poster].

At each hop PBM chooses a subset ``W`` of its neighbors minimizing

    f(W) = lambda * |W| / |N|
         + (1 - lambda) * (sum_z min_{w in W} d(w, z)) / (sum_z d(x, z))

— a tradeoff (weighted by ``lambda``) between bandwidth usage (how many
copies are transmitted) and multicast progress (remaining total distance).
Each destination is then assigned to the closest member of ``W``.

Exact PBM enumerates *every* subset of the neighborhood, which the GMP paper
itself flags as exponential and impractical (Section 4.2); at the paper's
density (~70 neighbors) it is infeasible outright.  As documented in
DESIGN.md we restrict the search to a *candidate pool* — for each
destination, its nearest progress-making neighbors — enumerating the pool
exhaustively when it is small and falling back to a greedy removal descent
from the per-destination-best subset when it is large.  Only subsets giving
strict progress for every assigned destination are admissible, which is
what rules out forwarding loops.

Destinations with no progress-making neighbor at all are *void*; PBM places
all of them into a single perimeter-mode group (the GMP paper, Section 5.4:
"PBM will group all the void destinations and always mark the packet to be
in perimeter mode for these destinations" — contrast GMP's Figure 10, which
may instead absorb them into routable groups).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.packets import Destination, MulticastPacket
from repro.routing.base import ForwardDecision, NodeView, RoutingProtocol
from repro.routing.greedy import PROGRESS_EPSILON, total_distance
from repro.routing.perimeter import enter_perimeter, perimeter_next_hop

_PERIMETER_EXITS = ("closer", "eager")


class PBMProtocol(RoutingProtocol):
    """Position-based multicast with the lambda progress/bandwidth tradeoff."""

    #: PBM's own objective prices bandwidth as lambda * |W| / |N| — the cost
    #: of a forwarding step scales with the number of selected neighbors,
    #: i.e. one transmission per subset member, not one shared broadcast.
    aggregates_copies = False

    def __init__(
        self,
        lam: float = 0.3,
        candidates_per_destination: int = 2,
        exact_pool_limit: int = 10,
        perimeter_exit: str = "closer",
    ) -> None:
        """Configure the protocol.

        Args:
            lam: The paper's tradeoff parameter (0 favours per-destination
                progress, larger values favour fewer transmissions; the GMP
                paper sweeps 0..0.6 and keeps the per-task best).
            candidates_per_destination: How many nearest progress-making
                neighbors per destination seed the candidate pool.
            exact_pool_limit: Pool size up to which all ``2^p - 1`` subsets
                are scored exactly; beyond it a greedy removal descent from
                the per-destination-best subset is used.
            perimeter_exit: ``"closer"`` (GPSR rule) or ``"eager"``.
        """
        if not 0.0 <= lam <= 1.0:
            raise ValueError(f"lambda must be in [0, 1], got {lam}")
        if candidates_per_destination < 1:
            raise ValueError("need at least one candidate per destination")
        if exact_pool_limit < 1 or exact_pool_limit > 20:
            raise ValueError("exact pool limit must be in [1, 20]")
        if perimeter_exit not in _PERIMETER_EXITS:
            raise ValueError(f"unknown perimeter exit rule {perimeter_exit!r}")
        self.lam = lam
        self.candidates_per_destination = candidates_per_destination
        self.exact_pool_limit = exact_pool_limit
        self.perimeter_exit = perimeter_exit
        self.name = f"PBM[l={lam:g}]"

    # ------------------------------------------------------------------
    # RoutingProtocol interface
    # ------------------------------------------------------------------

    def handle(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        if packet.perimeter is None:
            return self._handle_greedy(view, packet)
        return self._handle_perimeter(view, packet)

    # ------------------------------------------------------------------
    # Greedy subset selection
    # ------------------------------------------------------------------

    def _handle_greedy(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        decisions, void_group = self._route_by_subset(view, packet)
        if void_group:
            decisions.extend(self._start_perimeter(view, packet, void_group))
        return decisions

    def _route_by_subset(
        self, view: NodeView, packet: MulticastPacket
    ) -> Tuple[List[ForwardDecision], List[Destination]]:
        """Select the forwarding subset; returns (decisions, void dests)."""
        destinations = list(packet.destinations)
        neighbor_ids = view.neighbor_ids
        if not neighbor_ids:
            return [], destinations
        neighbor_locs = view.neighbor_location_array()
        dest_locs = np.asarray([[d.location[0], d.location[1]] for d in destinations])
        own = np.asarray([view.location[0], view.location[1]])
        # dist[i, z] = d(neighbor_i, dest_z); own_dist[z] = d(x, dest_z).
        diff = neighbor_locs[:, None, :] - dest_locs[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        own_dist = np.sqrt(((dest_locs - own) ** 2).sum(axis=1))

        progress = dist < (own_dist - PROGRESS_EPSILON)[None, :]
        has_progress = progress.any(axis=0)
        void_group = [d for d, ok in zip(destinations, has_progress) if not ok]
        routable_idx = np.flatnonzero(has_progress)
        if routable_idx.size == 0:
            return [], void_group

        sub_dist = dist[:, routable_idx]
        sub_own = own_dist[routable_idx]
        pool = self._candidate_pool(sub_dist, sub_own)
        subset = self._select_subset(
            sub_dist, sub_own, pool, neighbor_count=len(neighbor_ids)
        )

        # Assign each routable destination to the closest subset member.
        groups: Dict[int, List[Destination]] = {}
        for col, dest_idx in enumerate(routable_idx):
            member = min(subset, key=lambda m: sub_dist[m, col])
            groups.setdefault(member, []).append(destinations[int(dest_idx)])
        decisions = [
            ForwardDecision(
                neighbor_ids[member], packet.with_destinations(group)
            )
            for member, group in sorted(groups.items())
        ]
        return decisions, void_group

    def _candidate_pool(
        self, dist: np.ndarray, own_dist: np.ndarray
    ) -> List[int]:
        """Nearest progress-making neighbors per destination, deduplicated.

        Dedup goes through an insertion-ordered dict, never a set: the pool
        order seeds subset enumeration, so it must be identical under every
        ``PYTHONHASHSEED``.
        """
        pool: Dict[int, None] = {}
        for z in range(dist.shape[1]):
            order = np.argsort(dist[:, z], kind="stable")
            taken = 0
            for i in order:
                if dist[i, z] >= own_dist[z] - PROGRESS_EPSILON:
                    break  # Sorted: nothing further makes progress either.
                pool.setdefault(int(i), None)
                taken += 1
                if taken >= self.candidates_per_destination:
                    break
        return list(pool)

    def _select_subset(
        self,
        dist: np.ndarray,
        own_dist: np.ndarray,
        pool: Sequence[int],
        neighbor_count: int,
    ) -> List[int]:
        """Minimize f(W) over admissible subsets of the candidate pool."""
        own_total = float(own_dist.sum())
        lam = self.lam

        def score(member_rows: np.ndarray) -> Tuple[bool, float]:
            mins = dist[member_rows].min(axis=0)
            valid = bool((mins < own_dist - PROGRESS_EPSILON).all())
            f = lam * len(member_rows) / neighbor_count + (1.0 - lam) * (
                float(mins.sum()) / own_total if own_total > 0 else 0.0
            )
            return valid, f

        if len(pool) <= self.exact_pool_limit:
            best: Optional[List[int]] = None
            best_score = float("inf")
            pool_list = list(pool)
            for mask in range(1, 1 << len(pool_list)):
                members = [pool_list[i] for i in range(len(pool_list)) if mask >> i & 1]
                valid, f = score(np.asarray(members))
                if valid and (
                    f < best_score - 1e-15
                    or (
                        abs(f - best_score) <= 1e-15
                        and best is not None
                        and len(members) < len(best)
                    )
                ):
                    best, best_score = members, f
            if best is not None:
                return best
            # Fall through to the always-valid per-destination-best subset.

        # Greedy removal descent from the per-destination-best subset.
        current = sorted({int(np.argmin(dist[:, z])) for z in range(dist.shape[1])})
        _, current_score = score(np.asarray(current))
        improved = True
        while improved and len(current) > 1:
            improved = False
            for member in list(current):
                candidate = [m for m in current if m != member]
                valid, f = score(np.asarray(candidate))
                if valid and f < current_score - 1e-15:
                    current, current_score = candidate, f
                    improved = True
                    break
        return current

    # ------------------------------------------------------------------
    # Perimeter operation
    # ------------------------------------------------------------------

    def _start_perimeter(
        self,
        view: NodeView,
        packet: MulticastPacket,
        void_group: Sequence[Destination],
    ) -> List[ForwardDecision]:
        state = enter_perimeter(view, void_group)
        step = perimeter_next_hop(view, state)
        if step is None:
            return []
        next_hop, new_state = step
        return [
            ForwardDecision(next_hop, packet.with_perimeter(void_group, new_state))
        ]

    def _handle_perimeter(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        state = packet.perimeter
        assert state is not None
        may_exit = self.perimeter_exit == "eager" or (
            total_distance(view.location, packet.destination_locations)
            < state.entry_total_distance - PROGRESS_EPSILON
        )
        if may_exit:
            decisions, void_group = self._route_by_subset(view, packet)
            if decisions and not void_group:
                return decisions
            if decisions and void_group:
                decisions.extend(self._start_perimeter(view, packet, void_group))
                return decisions
        step = perimeter_next_hop(view, state)
        if step is None:
            return []
        next_hop, new_state = step
        return [
            ForwardDecision(
                next_hop, packet.with_perimeter(packet.destinations, new_state)
            )
        ]
