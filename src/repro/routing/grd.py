"""GRD: independent greedy unicast per destination.

The paper's extreme-case baseline (Section 5): a separate packet is
greedily routed toward each destination, with no sharing between paths.
Greedy geographic forwarding explicitly minimizes each destination's own
hop count, so GRD lower-bounds the *per-destination* hop count (Figure 12)
while being maximally wasteful in *total* hops.  It performs no void
recovery ("the other protocols do not use perimeter routing", Section 5.4).
"""

from __future__ import annotations

from typing import List

from repro.packets import MulticastPacket
from repro.routing.base import ForwardDecision, NodeView, RoutingProtocol
from repro.routing.greedy import greedy_next_hop


class GRDProtocol(RoutingProtocol):
    """Per-destination greedy unicast (no multicast sharing)."""

    name = "GRD"
    #: Independent unicast packets never share a frame, by definition.
    aggregates_copies = False

    def handle(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        decisions: List[ForwardDecision] = []
        for dest in packet.destinations:
            next_hop = greedy_next_hop(view, dest.location)
            if next_hop is None:
                continue  # Local minimum: this destination's delivery fails.
            decisions.append(
                ForwardDecision(next_hop, packet.with_destinations([dest]))
            )
        return decisions
