"""GMP: the paper's Geographic Multicast routing Protocol (Figure 7).

At every transmitting node:

1. build an rrSTR virtual Steiner tree over the remaining destinations;
2. the root's children are the *pivots*; each pivot's subtree terminals form
   its *group*;
3. for each pivot, pick the neighbor nearest to the pivot whose total
   distance to the group's destinations strictly beats the current node's;
4. when no such neighbor exists, split the group progressively (peel off
   the pivot's last child and promote it to a pivot of its own);
5. destinations whose singleton groups still find no next hop are *void*:
   they travel together as one perimeter-mode group toward their average
   location (Section 4.1) — note a void destination may instead have been
   absorbed into a routable group by the splitting above, the behaviour
   Figure 10 contrasts against PBM.

``GMPProtocol(radio_aware=False)`` is the paper's **GMPnr** ablation;
``next_hop_rule="closest-destination"`` is our ablation of the pivot-based
next-hop choice (using the group's nearest destination instead, LGS-style).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry import distance
from repro.packets import Destination, MulticastPacket
from repro.perf.cache import TreeCache
from repro.routing.base import ForwardDecision, NodeView, RoutingProtocol, merge_decisions
from repro.routing.greedy import (
    PROGRESS_EPSILON,
    best_neighbor_for_group,
    total_distance,
)
from repro.routing.perimeter import enter_perimeter, perimeter_next_hop
from repro.steiner.rrstr import RRStrConfig, rrstr
from repro.steiner.tree import SteinerTree

_NEXT_HOP_RULES = ("pivot", "closest-destination")
_PERIMETER_EXITS = ("closer", "eager")


class GMPProtocol(RoutingProtocol):
    """The paper's GMP (and, with ``radio_aware=False``, GMPnr)."""

    def __init__(
        self,
        radio_aware: bool = True,
        next_hop_rule: str = "pivot",
        prose_one_in_range_rule: bool = False,
        perimeter_exit: str = "closer",
        merge_coincident: bool = True,
    ) -> None:
        """Configure the protocol.

        Args:
            radio_aware: Apply Section-3.3's radio-range rules in rrSTR
                (``False`` gives the paper's GMPnr variant).
            next_hop_rule: ``"pivot"`` (paper: neighbor nearest the pivot) or
                ``"closest-destination"`` (ablation: neighbor nearest the
                group's closest destination).
            prose_one_in_range_rule: rrSTR tie-break between the paper's
                pseudocode and prose (see :mod:`repro.steiner.rrstr`).
            perimeter_exit: ``"closer"`` — attempt to resume greedy routing
                only once the node's total distance beats the perimeter
                entry point (GPSR's rule, and the paper's own description of
                perimeter mode); ``"eager"`` — attempt at every hop (the
                literal reading of Section 4.1 steps 4–7; can livelock until
                the TTL fires, which is measurable in the Figure-15 bench).
            merge_coincident: Merge greedy copies that picked the same
                next hop into one packet (default).  Under the broadcast
                frame model the copies share a transmission regardless;
                merging additionally lets the receiving node treat them as
                one group again instead of handling each copy separately.
                Off is the literal per-group-copy reading (ablation).
        """
        if next_hop_rule not in _NEXT_HOP_RULES:
            raise ValueError(f"unknown next-hop rule {next_hop_rule!r}")
        if perimeter_exit not in _PERIMETER_EXITS:
            raise ValueError(f"unknown perimeter exit rule {perimeter_exit!r}")
        self.radio_aware = radio_aware
        self.next_hop_rule = next_hop_rule
        self.perimeter_exit = perimeter_exit
        self.merge_coincident = merge_coincident
        self.rrstr_config = RRStrConfig(
            radio_aware=radio_aware,
            prose_one_in_range_rule=prose_one_in_range_rule,
        )
        self.name = "GMP" if radio_aware else "GMPnr"
        # Memoized rrSTR trees, keyed on the exact (root location, radio
        # range, ordered destination list) — perimeter-mode revisits and
        # repeated tasks rebuild identical trees otherwise.  The rrSTR
        # config is per-instance and immutable, so it needs no key part.
        self._tree_cache: TreeCache[SteinerTree] = TreeCache("rrstr_tree")

    def describe(self) -> str:
        parts = [self.name]
        if self.next_hop_rule != "pivot":
            parts.append(f"next-hop={self.next_hop_rule}")
        if self.perimeter_exit != "closer":
            parts.append(f"perimeter-exit={self.perimeter_exit}")
        return " ".join(parts)

    # ------------------------------------------------------------------
    # RoutingProtocol interface
    # ------------------------------------------------------------------

    def handle(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        if packet.perimeter is None:
            return self._handle_greedy(view, packet)
        return self._handle_perimeter(view, packet)

    # ------------------------------------------------------------------
    # Greedy (tree-splitting) operation
    # ------------------------------------------------------------------

    def _handle_greedy(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        decisions, void_group = self._split_and_route(view, packet)
        if void_group:
            decisions.extend(self._start_perimeter(view, packet, void_group))
        return decisions

    def _split_and_route(
        self, view: NodeView, packet: MulticastPacket
    ) -> Tuple[List[ForwardDecision], List[Destination]]:
        """Figure 7, steps 1–4: build the tree, group, select next hops.

        Returns the routable forwarding decisions and the list of void
        destinations left over after all splitting.
        """
        dest_by_ref: Dict[int, Destination] = {
            d.node_id: d for d in packet.destinations
        }
        cache_key = (
            view.location,
            view.radio_range,
            tuple((d.node_id, d.location) for d in packet.destinations),
        )
        tree = self._tree_cache.get(cache_key)
        if tree is None:
            tree = rrstr(
                view.location,
                [(d.node_id, d.location) for d in packet.destinations],
                view.radio_range,
                self.rrstr_config,
            )
            self._tree_cache.put(cache_key, tree)
        decisions: List[ForwardDecision] = []
        void_destinations: List[Destination] = []
        pivot_queue = deque(tree.pivots())
        while pivot_queue:
            pivot_vid = pivot_queue.popleft()
            group = [
                dest_by_ref[t.ref] for t in tree.terminals_under(pivot_vid)
            ]
            next_hop = self._next_hop_for_group(view, tree, pivot_vid, group)
            if next_hop is not None:
                decisions.append(
                    ForwardDecision(next_hop, packet.with_destinations(group))
                )
                continue
            children = tree.children_of(pivot_vid)
            if not children:
                # A lone destination with no useful neighbor: void.
                void_destinations.append(group[0])
                continue
            # Split: the pivot's last child becomes a pivot of its own.
            last_child = children[-1]
            tree.detach(last_child)
            tree.attach(0, last_child)
            pivot_queue.append(last_child)
            remaining = tree.children_of(pivot_vid)
            if len(remaining) == 1 and tree.vertex(pivot_vid).is_virtual:
                # A virtual pivot with a single child is pointless: promote
                # the child and drop the pivot (Figure 7, step 4, inner case).
                only_child = remaining[0]
                tree.detach(only_child)
                tree.attach(0, only_child)
                pivot_queue.append(only_child)
            else:
                # "continue with the same p" — retry with the reduced group.
                pivot_queue.appendleft(pivot_vid)
        if self.merge_coincident:
            decisions = merge_decisions(decisions)
        return decisions, void_destinations

    def _next_hop_for_group(
        self,
        view: NodeView,
        tree: SteinerTree,
        pivot_vid: int,
        group: Sequence[Destination],
    ) -> Optional[int]:
        group_locations = [d.location for d in group]
        if self.next_hop_rule == "pivot":
            target = tree.vertex(pivot_vid).location
        else:
            target = min(
                group_locations, key=lambda loc: distance(view.location, loc)
            )
        return best_neighbor_for_group(view, target, group_locations)

    # ------------------------------------------------------------------
    # Perimeter operation (Section 4.1)
    # ------------------------------------------------------------------

    def _start_perimeter(
        self,
        view: NodeView,
        packet: MulticastPacket,
        void_group: Sequence[Destination],
    ) -> List[ForwardDecision]:
        """Enter perimeter mode for the void group (one shared packet)."""
        state = enter_perimeter(view, void_group)
        step = perimeter_next_hop(view, state)
        if step is None:
            return []  # No planar way out: the group's delivery fails.
        next_hop, new_state = step
        return [
            ForwardDecision(next_hop, packet.with_perimeter(void_group, new_state))
        ]

    def _handle_perimeter(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        state = packet.perimeter
        assert state is not None
        may_exit = self.perimeter_exit == "eager" or (
            total_distance(view.location, packet.destination_locations)
            < state.entry_total_distance - PROGRESS_EPSILON
        )
        if may_exit:
            decisions, void_group = self._split_and_route(view, packet)
            if decisions and not void_group:
                # Step 5: every group found a valid next hop — all copies
                # leave perimeter mode (with_destinations cleared the flag).
                return decisions
            if decisions and void_group:
                # Step 7: some groups routed; the uncovered ones start a
                # *fresh* perimeter round with a new average destination.
                decisions.extend(self._start_perimeter(view, packet, void_group))
                return decisions
            # Step 6: nothing routable — remain in perimeter mode with the
            # same previous average destination (fall through).
        step = perimeter_next_hop(view, state)
        if step is None:
            return []
        next_hop, new_state = step
        return [
            ForwardDecision(
                next_hop, packet.with_perimeter(packet.destinations, new_state)
            )
        ]
