"""Routing protocols.

All protocols implement :class:`repro.routing.base.RoutingProtocol` and make
forwarding decisions from a :class:`repro.routing.base.NodeView` — the local
knowledge (own location + neighbor table) the paper allows a sensor node.

* :mod:`repro.routing.gmp` — the paper's contribution (GMP), including the
  GMPnr ablation (radio-range awareness off).
* :mod:`repro.routing.lgs` — location-guided Steiner/k-ary trees [Chen &
  Nahrstedt 2002] (LGS, LGK).
* :mod:`repro.routing.pbm` — position-based multicast [Mauve et al. 2003].
* :mod:`repro.routing.smt` — the centralized KMB source-routing baseline.
* :mod:`repro.routing.grd` — per-destination greedy unicast (lower bound on
  per-destination hop count).
"""

from repro.routing.base import NodeView, RoutingProtocol, ForwardDecision
from repro.routing.greedy import (
    closest_neighbor_to,
    greedy_next_hop,
    total_distance,
)
from repro.routing.perimeter import (
    PerimeterUnreachable,
    enter_perimeter,
    perimeter_next_hop,
)
from repro.routing.gmp import GMPProtocol
from repro.routing.lgs import LGKProtocol, LGSProtocol
from repro.routing.pbm import PBMProtocol
from repro.routing.smt import SMTProtocol
from repro.routing.grd import GRDProtocol
from repro.routing.gpsr import GPSRProtocol
from repro.routing.flooding import FloodingProtocol

__all__ = [
    "NodeView",
    "RoutingProtocol",
    "ForwardDecision",
    "closest_neighbor_to",
    "greedy_next_hop",
    "total_distance",
    "PerimeterUnreachable",
    "enter_perimeter",
    "perimeter_next_hop",
    "GMPProtocol",
    "LGSProtocol",
    "LGKProtocol",
    "PBMProtocol",
    "SMTProtocol",
    "GRDProtocol",
    "GPSRProtocol",
    "FloodingProtocol",
]
