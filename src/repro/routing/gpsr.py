"""GPSR: Greedy Perimeter Stateless Routing [Karp & Kung 2000].

The unicast workhorse the paper's whole protocol family builds on, included
as a first-class protocol: greedy geographic forwarding with perimeter-mode
recovery on the Gabriel graph.  Useful as

* a recovery-enabled unicast upper bound for GRD (which is greedy-only),
* a direct way to exercise the perimeter machinery in isolation,
* the natural protocol for one-destination "multicast" tasks.

A multi-destination packet is treated as independent unicasts (one copy per
destination, never re-merged), so like GRD it reports per-copy
transmissions.
"""

from __future__ import annotations

from typing import List

from repro.packets import MulticastPacket
from repro.routing.base import ForwardDecision, NodeView, RoutingProtocol
from repro.routing.greedy import PROGRESS_EPSILON, greedy_next_hop
from repro.routing.perimeter import enter_perimeter, perimeter_next_hop
from repro.geometry import distance


class GPSRProtocol(RoutingProtocol):
    """Greedy + perimeter unicast, run independently per destination."""

    name = "GPSR"
    #: Independent unicast streams: one frame per copy, as with GRD.
    aggregates_copies = False

    def handle(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        decisions: List[ForwardDecision] = []
        if packet.in_perimeter_mode:
            # Perimeter copies are always single-destination by
            # construction (see below).
            decisions.extend(self._handle_perimeter(view, packet))
            return decisions
        for dest in packet.destinations:
            single = packet.with_destinations([dest])
            next_hop = greedy_next_hop(view, dest.location)
            if next_hop is not None:
                decisions.append(ForwardDecision(next_hop, single))
                continue
            # Local minimum: enter perimeter mode for this destination.
            state = enter_perimeter(view, [dest])
            step = perimeter_next_hop(view, state)
            if step is None:
                continue  # Isolated or toured: this destination fails.
            hop, new_state = step
            decisions.append(
                ForwardDecision(hop, single.with_perimeter([dest], new_state))
            )
        return decisions

    def _handle_perimeter(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        state = packet.perimeter
        assert state is not None
        dest = packet.destinations[0]
        # GPSR's exit rule: resume greedy once strictly closer to the
        # destination than the point where the packet entered perimeter
        # mode.
        if (
            distance(view.location, dest.location)
            < state.entry_total_distance - PROGRESS_EPSILON
        ):
            next_hop = greedy_next_hop(view, dest.location)
            if next_hop is not None:
                return [ForwardDecision(next_hop, packet.with_destinations([dest]))]
        step = perimeter_next_hop(view, state)
        if step is None:
            return []
        hop, new_state = step
        return [
            ForwardDecision(hop, packet.with_perimeter([dest], new_state))
        ]
