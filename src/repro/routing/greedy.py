"""Greedy geographic forwarding primitives shared by all protocols."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.geometry import Point, distance
from repro.perf import kernels
from repro.routing.base import NodeView

#: Strictness slack for progress comparisons: a neighbor must beat the
#: current node's distance by more than this to count as progress, so
#: floating-point ties can never produce a forwarding loop.
PROGRESS_EPSILON = 1e-9


def total_distance(origin: Point, targets: Iterable[Point]) -> float:
    """Sum of Euclidean distances from ``origin`` to each target."""
    return sum(distance(origin, t) for t in targets)


def closest_neighbor_to(view: NodeView, target: Point) -> Optional[int]:
    """The neighbor nearest to ``target`` (no progress constraint)."""
    ids = view.neighbor_ids
    if not ids:
        return None
    locations = view.neighbor_location_array()
    if kernels.vectorized_enabled():
        return ids[kernels.nearest_index(locations, target)]
    deltas = locations - np.asarray([target[0], target[1]])
    return ids[int(np.argmin(np.einsum("ij,ij->i", deltas, deltas)))]


def greedy_next_hop(view: NodeView, target: Point) -> Optional[int]:
    """Greedy geographic unicast step toward ``target``.

    Returns the neighbor closest to ``target`` among those *strictly* closer
    to it than the current node, or ``None`` at a local minimum (void).
    """
    ids = view.neighbor_ids
    if not ids:
        return None
    locations = view.neighbor_location_array()
    if kernels.vectorized_enabled():
        dists = np.sqrt(kernels.distances_sq_to(locations, target))
    else:
        deltas = locations - np.asarray([target[0], target[1]])
        dists = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
    own = distance(view.location, target)
    best_idx = int(np.argmin(dists))
    if dists[best_idx] < own - PROGRESS_EPSILON:
        return ids[best_idx]
    return None


def group_distance_sums(view: NodeView, group_locations: Sequence[Point]) -> np.ndarray:
    """Per-neighbor sums of distances to every location in the group.

    Vectorized backbone of GMP/PBM next-hop selection: entry ``i`` is
    ``sum_z d(neighbor_i, z)`` aligned with ``view.neighbor_ids``.
    """
    locations = view.neighbor_location_array()
    if locations.shape[0] == 0 or not group_locations:
        return np.zeros(locations.shape[0], dtype=float)
    if kernels.vectorized_enabled():
        return kernels.group_distance_sums(locations, group_locations)
    targets = np.asarray([[p[0], p[1]] for p in group_locations])
    diff = locations[:, None, :] - targets[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff)).sum(axis=1)


def best_neighbor_for_group(
    view: NodeView,
    pivot_location: Point,
    group_locations: Sequence[Point],
) -> Optional[int]:
    """GMP's next-hop rule (paper Figure 7, step 4).

    The neighbor nearest to the pivot, among neighbors whose *total*
    distance to the group's destinations is strictly smaller than the
    current node's — the strict decrease is what rules out routing loops.
    """
    ids = view.neighbor_ids
    if not ids:
        return None
    sums = group_distance_sums(view, group_locations)
    threshold = total_distance(view.location, group_locations)
    eligible = np.flatnonzero(sums < threshold - PROGRESS_EPSILON)
    if eligible.size == 0:
        return None
    locations = view.neighbor_location_array()[eligible]
    if kernels.vectorized_enabled():
        pivot_dists = kernels.distances_sq_to(locations, pivot_location)
    else:
        deltas = locations - np.asarray([pivot_location[0], pivot_location[1]])
        pivot_dists = np.einsum("ij,ij->i", deltas, deltas)
    return ids[int(eligible[int(np.argmin(pivot_dists))])]
