"""Protocol interface and the per-node local view.

The paper's protocols are *stateless and fully distributed*: a forwarding
decision may use only the node's own location, the locations of its
immediate neighbors, and the contents of the packet.  :class:`NodeView` is
that capability, carved out of the global :class:`WirelessNetwork` by the
engine; protocol code receives nothing else, so it cannot accidentally use
global knowledge.  The one deliberate exception is the centralized SMT
baseline, which the engine grants whole-network access via
:meth:`RoutingProtocol.prepare_task` (mirroring the paper's "for comparison
purposes only" framing).
"""

from __future__ import annotations

import abc
from typing import List, NamedTuple, Tuple

import numpy as np

from repro.geometry import Point
from repro.network.graph import WirelessNetwork
from repro.packets import MulticastPacket


class ForwardDecision(NamedTuple):
    """One outgoing copy: the chosen next hop and the packet to send it."""

    next_hop_id: int
    packet: MulticastPacket


class NodeView:
    """What a single node is allowed to know.

    Exposes the node's own id/location, its neighbor table (ids and
    locations), the radio range, and the locally-computed planar (Gabriel)
    neighbor subset used by perimeter mode.
    """

    __slots__ = ("_network", "node_id", "location")

    def __init__(self, network: WirelessNetwork, node_id: int) -> None:
        self._network = network
        self.node_id = node_id
        self.location = network.location_of(node_id)

    @property
    def radio_range(self) -> float:
        return self._network.radio.radio_range_m

    @property
    def neighbor_ids(self) -> Tuple[int, ...]:
        """Ids of every node within radio range."""
        return self._network.neighbors_of(self.node_id)

    @property
    def planar_neighbor_ids(self) -> Tuple[int, ...]:
        """Gabriel-graph neighbor subset (for perimeter forwarding)."""
        return self._network.gabriel_neighbors_of(self.node_id)

    def location_of(self, neighbor_id: int) -> Point:
        """Location of a neighbor (or of this node itself).

        Raises ``ValueError`` for any other node: a sensor only knows the
        positions of nodes it can hear.
        """
        if neighbor_id != self.node_id and not self._network.are_neighbors(
            self.node_id, neighbor_id
        ):
            raise ValueError(
                f"node {self.node_id} has no knowledge of non-neighbor {neighbor_id}"
            )
        return self._network.location_of(neighbor_id)

    def neighbor_location_array(self) -> np.ndarray:
        """Neighbor locations as an ``(m, 2)`` array aligned with ``neighbor_ids``.

        Backed by the network's per-node cache: the rows are gathered once
        per node per deployment, not once per forwarding decision.  The
        array is read-only — protocols must not scribble on shared state.
        """
        return self._network.neighbor_location_array(self.node_id)


class RoutingProtocol(abc.ABC):
    """A stateless multicast forwarding discipline.

    Subclasses decide, for one received packet at one node, which neighbors
    get which destination subsets.  Returning an empty list while the packet
    still carries destinations means the protocol gives up on them (the
    engine records a delivery failure) — e.g. LGS at a void.
    """

    #: Short display name used in reports and figures.
    name: str = "base"

    #: Whether this protocol may address the same destination in several
    #: copies of one forwarding step.  Partitioning protocols (everything in
    #: the paper) never do, and the engine validates that; redundancy-based
    #: protocols (flooding) opt out.
    duplicates_allowed: bool = False

    #: Whether one forwarding step's copies share a single radio
    #: transmission.  The paper's network model (Section 2) is broadcast
    #: with location-based pickup — "each packet is marked with the location
    #: of the next hop and the corresponding node picks up the packet" — so
    #: a multicast protocol that splits a group bundles the per-group copies
    #: into one frame (the wireless multicast advantage).  GRD overrides
    #: this with ``False``: its packets are *independently* routed unicasts
    #: by definition.
    aggregates_copies: bool = True

    def prepare_task(
        self,
        network: WirelessNetwork,
        source_id: int,
        destination_ids: Tuple[int, ...],
    ) -> None:
        """Hook run once per task before the source transmits.

        Distributed protocols ignore it; the centralized SMT baseline uses
        it to compute its global Steiner tree.
        """

    @abc.abstractmethod
    def handle(
        self, view: NodeView, packet: MulticastPacket
    ) -> List[ForwardDecision]:
        """Forwarding decision at ``view.node_id`` for ``packet``.

        The engine has already removed the current node from the packet's
        destination list and recorded the delivery; ``packet.destinations``
        is therefore non-empty and contains only other nodes.
        """

    def describe(self) -> str:
        """One-line description for reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


def merge_decisions(decisions: List[ForwardDecision]) -> List[ForwardDecision]:
    """Merge greedy copies addressed to the same next hop.

    Two groups whose selected next hop coincides can share one transmission
    (the receiver re-splits anyway).  Perimeter-mode copies are never merged
    — their recovery state is per-group.
    """
    merged: List[ForwardDecision] = []
    index_by_hop: dict = {}
    for decision in decisions:
        if decision.packet.in_perimeter_mode:
            merged.append(decision)
            continue
        existing = index_by_hop.get(decision.next_hop_id)
        if existing is None:
            index_by_hop[decision.next_hop_id] = len(merged)
            merged.append(decision)
        else:
            prior = merged[existing]
            combined = prior.packet.with_destinations(
                tuple(prior.packet.destinations) + tuple(decision.packet.destinations)
            )
            merged[existing] = ForwardDecision(decision.next_hop_id, combined)
    return merged
