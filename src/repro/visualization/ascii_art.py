"""ASCII canvases for geographic scenes."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.geometry import Point
from repro.network.graph import WirelessNetwork
from repro.steiner.tree import SteinerTree


class AsciiCanvas:
    """A character grid mapped onto a rectangular world region.

    The y axis points up (world convention), so row 0 of the rendered text
    is the top of the field.
    """

    def __init__(
        self,
        width_chars: int,
        height_chars: int,
        world_min: Point,
        world_max: Point,
    ) -> None:
        if width_chars < 2 or height_chars < 2:
            raise ValueError("canvas needs at least 2x2 characters")
        if world_max[0] <= world_min[0] or world_max[1] <= world_min[1]:
            raise ValueError("world region must have positive extent")
        self.width_chars = width_chars
        self.height_chars = height_chars
        self.world_min = world_min
        self.world_max = world_max
        self._grid = [[" "] * width_chars for _ in range(height_chars)]

    def _to_cell(self, p: Point) -> Tuple[int, int]:
        fx = (p[0] - self.world_min[0]) / (self.world_max[0] - self.world_min[0])
        fy = (p[1] - self.world_min[1]) / (self.world_max[1] - self.world_min[1])
        col = min(self.width_chars - 1, max(0, int(fx * (self.width_chars - 1))))
        row = min(self.height_chars - 1, max(0, int((1.0 - fy) * (self.height_chars - 1))))
        return row, col

    def plot(self, p: Point, symbol: str) -> None:
        """Place a single character at the world point ``p``."""
        if len(symbol) != 1:
            raise ValueError(f"plot needs a single character, got {symbol!r}")
        row, col = self._to_cell(p)
        self._grid[row][col] = symbol

    def line(self, a: Point, b: Point, symbol: str = ".") -> None:
        """Draw a straight segment between two world points."""
        steps = max(self.width_chars, self.height_chars) * 2
        for i in range(steps + 1):
            t = i / steps
            p = Point(a[0] + (b[0] - a[0]) * t, a[1] + (b[1] - a[1]) * t)
            row, col = self._to_cell(p)
            if self._grid[row][col] == " ":
                self._grid[row][col] = symbol

    def render(self) -> str:
        """The canvas as a newline-joined string (with a border)."""
        top = "+" + "-" * self.width_chars + "+"
        rows = ["|" + "".join(row) + "|" for row in self._grid]
        return "\n".join([top] + rows + [top])


def render_network(
    network: WirelessNetwork,
    width_chars: int = 72,
    height_chars: int = 24,
    highlights: Optional[Dict[int, str]] = None,
    show_links: bool = False,
) -> str:
    """Render a deployment; ``highlights`` maps node id -> symbol.

    Plain nodes render as ``·``-style dots; pass ``show_links=True`` to
    sketch the unit-disk edges (dense networks will saturate the canvas).
    """
    xs = network.locations[:, 0]
    ys = network.locations[:, 1]
    canvas = AsciiCanvas(
        width_chars,
        height_chars,
        Point(float(xs.min()), float(ys.min())),
        Point(float(xs.max()), float(ys.max())),
    )
    if show_links:
        for node in network.nodes:
            for other in network.neighbors_of(node.node_id):
                if other > node.node_id:
                    canvas.line(node.location, network.location_of(other), ".")
    for node in network.nodes:
        canvas.plot(node.location, "o")
    for node_id, symbol in (highlights or {}).items():
        canvas.plot(network.location_of(node_id), symbol)
    return canvas.render()


def render_tree(
    tree: SteinerTree,
    width_chars: int = 72,
    height_chars: int = 24,
    extra_points: Iterable[Tuple[Point, str]] = (),
) -> str:
    """Render a virtual multicast tree: S = source, D = destinations,
    * = virtual (Steiner) vertices, dotted segments = tree edges."""
    locations = [v.location for v in tree.vertices()]
    xs = [p[0] for p in locations] + [p[0] for p, _ in extra_points]
    ys = [p[1] for p in locations] + [p[1] for p, _ in extra_points]
    pad_x = max(1.0, (max(xs) - min(xs)) * 0.05)
    pad_y = max(1.0, (max(ys) - min(ys)) * 0.05)
    canvas = AsciiCanvas(
        width_chars,
        height_chars,
        Point(min(xs) - pad_x, min(ys) - pad_y),
        Point(max(xs) + pad_x, max(ys) + pad_y),
    )
    for parent, child in tree.edges():
        canvas.line(tree.vertex(parent).location, tree.vertex(child).location, ".")
    for vertex in tree.vertices():
        if vertex.vid == 0:
            canvas.plot(vertex.location, "S")
        elif vertex.is_virtual:
            canvas.plot(vertex.location, "*")
        else:
            canvas.plot(vertex.location, "D")
    for point, symbol in extra_points:
        canvas.plot(point, symbol)
    return canvas.render()


def describe_tree(tree: SteinerTree) -> str:
    """One-line-per-edge textual dump of a virtual multicast tree."""
    labels = {}
    for vertex in tree.vertices():
        if vertex.vid == 0:
            labels[vertex.vid] = "S"
        elif vertex.is_virtual:
            labels[vertex.vid] = f"w{vertex.vid}"
        else:
            labels[vertex.vid] = f"d{vertex.ref}"
    lines = []
    for parent, child in sorted(tree.edges()):
        p, c = tree.vertex(parent), tree.vertex(child)
        from repro.geometry import distance

        lines.append(
            f"{labels[parent]:>4} -> {labels[child]:<4}  {distance(p.location, c.location):7.1f} m"
        )
    lines.append(f"total length: {tree.total_length():.1f} m")
    return "\n".join(lines)
