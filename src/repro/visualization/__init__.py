"""Terminal (ASCII) rendering of deployments, trees and routes.

No plotting dependencies: everything renders to a character grid, which is
what the examples print and what documentation snippets embed.
"""

from repro.visualization.ascii_art import AsciiCanvas, render_network, render_tree

__all__ = ["AsciiCanvas", "render_network", "render_tree"]
