"""Performance layer: instrumentation, hot-path caches, parallel fan-out.

Three cooperating modules, none of which may change simulation *results*:

* :mod:`repro.perf.counters` — process-local cache hit/miss counters and
  stage wall-time accounting (with an *injected* clock, so simulation code
  never reads the wall clock itself — reprolint R002).
* :mod:`repro.perf.cache` — memoization of the per-hop geometry hot path
  (Fermat points, reduction ratios, rrSTR trees), keyed on exact coordinate
  tuples so a hit is bit-identical to a fresh computation.
* :mod:`repro.perf.parallel` — a deterministic process-pool runner that
  shards independent work units and merges results in canonical submission
  order, guaranteeing parallel output identical to the serial run.
"""

from repro.perf.cache import (
    TreeCache,
    cache_stats,
    cached_fermat_point,
    cached_reduction_ratio_point,
    caches_disabled,
    clear_caches,
    set_caching_enabled,
)
from repro.perf.counters import GLOBAL_COUNTERS, CacheCounter, PerfCounters, StageTimer
from repro.perf.parallel import run_units

__all__ = [
    "TreeCache",
    "cache_stats",
    "cached_fermat_point",
    "cached_reduction_ratio_point",
    "caches_disabled",
    "clear_caches",
    "set_caching_enabled",
    "GLOBAL_COUNTERS",
    "CacheCounter",
    "PerfCounters",
    "StageTimer",
    "run_units",
]
