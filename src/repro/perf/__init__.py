"""Performance layer: instrumentation, hot-path caches, parallel fan-out.

Three cooperating modules, none of which may change simulation *results*:

* :mod:`repro.perf.counters` — process-local cache hit/miss counters and
  stage wall-time accounting (with an *injected* clock, so simulation code
  never reads the wall clock itself — reprolint R002).
* :mod:`repro.perf.cache` — memoization of the per-hop geometry hot path
  (Fermat points, reduction ratios, rrSTR trees), keyed on exact coordinate
  tuples so a hit is bit-identical to a fresh computation.
* :mod:`repro.perf.parallel` — a deterministic process-pool runner that
  shards independent work units and merges results in canonical submission
  order, guaranteeing parallel output identical to the serial run.
* :mod:`repro.perf.kernels` — batched NumPy geometry kernels using the same
  elementwise formulas as their scalar references, so many Fermat points /
  reduction ratios / witness tests compute in one call with bit-identical
  results.
"""

from repro.perf.cache import (
    TreeCache,
    cache_stats,
    cached_fermat_point,
    cached_reduction_ratio_pairs,
    cached_reduction_ratio_point,
    caches_disabled,
    caching_enabled,
    clear_caches,
    set_caching_enabled,
)
from repro.perf.counters import (
    GLOBAL_COUNTERS,
    BatchCounter,
    CacheCounter,
    PerfCounters,
    StageTimer,
)
from repro.perf.kernels import (
    MIN_BATCH,
    disk_mask,
    distances_sq_to,
    distances_to,
    fermat_point_batch,
    pairwise_distances,
    gabriel_keep_mask,
    group_distance_sums,
    nearest_index,
    pair_indices,
    reduction_ratio_batch,
    rng_keep_mask,
    set_vectorized_enabled,
    unit_disk_rows,
    vectorized_disabled,
    vectorized_enabled,
)
from repro.perf.parallel import run_units
from repro.perf.soa import set_soa_enabled, soa_disabled, soa_enabled

__all__ = [
    "TreeCache",
    "cache_stats",
    "cached_fermat_point",
    "cached_reduction_ratio_pairs",
    "cached_reduction_ratio_point",
    "caches_disabled",
    "caching_enabled",
    "clear_caches",
    "set_caching_enabled",
    "GLOBAL_COUNTERS",
    "BatchCounter",
    "CacheCounter",
    "PerfCounters",
    "StageTimer",
    "run_units",
    "MIN_BATCH",
    "disk_mask",
    "distances_sq_to",
    "distances_to",
    "fermat_point_batch",
    "gabriel_keep_mask",
    "group_distance_sums",
    "nearest_index",
    "pair_indices",
    "pairwise_distances",
    "reduction_ratio_batch",
    "rng_keep_mask",
    "set_vectorized_enabled",
    "unit_disk_rows",
    "vectorized_disabled",
    "vectorized_enabled",
    "set_soa_enabled",
    "soa_disabled",
    "soa_enabled",
]
