"""Zero-copy shared-memory plane for network state.

Parallel sweeps run many tasks against the *same* deployments, yet every
worker process used to rebuild each network from scratch through its own
``cached_network`` memo — multiplying both warm-up time and RSS by the
worker count.  The struct-of-arrays network core keeps coordinates,
liveness, residual energy, the CSR adjacency, planarization overlays and
the spatial-grid member arrays in flat NumPy buffers, which makes them
directly mappable: the parent *publishes* each built network into one
named ``multiprocessing.shared_memory`` segment, the pool initializer
hands workers the manifests, and workers *attach* read-only array views
over the mapped buffers — :func:`repro.network.graph.attach_shared_network`
reconstructs a ``WirelessNetwork`` around them without copying a byte of
node state.

The plane keeps the contracts every perf layer in this repo honors:

* **A/B switch** — :func:`set_shared_plane_enabled` turns the plane off;
  publishing refuses everything and workers fall back to rebuilding, with
  byte-identical digests either way (the mapped views hold the exact
  bytes a fresh build produces, and all derived caches fill lazily from
  the same inputs).
* **Deterministic naming** — segment names are
  ``gmp-plane-<seed>-<plane#>-<segment#>``, derived from the run seed and
  process-local counters, never from the PID, the clock, or entropy.
  Reruns are reproducible, and a run killed mid-sweep leaves names its
  successor finds and reclaims (see :func:`_create_segment`).
* **Guaranteed cleanup** — a plane is a context manager and an ``atexit``
  hook closes any plane an abnormal exit leaked, so CI never leaks
  ``/dev/shm`` entries.  Closing *unlinks* each name immediately but
  retires the mapping instead of unmapping it: adopted and attached
  array views may outlive the plane, and ``SharedMemory.close()`` would
  pull the pages out from under them (it does not raise ``BufferError``
  for live numpy views).  The OS reclaims the memory at process exit.
* **Copy-on-write mutation** — attached networks mark themselves shared;
  the first ``fail_node``/``move_node``/``drain_energy`` copies node
  state private (reprolint R017 pins this), so worker-local mutation
  never touches the bytes other processes read.
"""

from __future__ import annotations

import atexit
import itertools
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, Iterator, List, Optional, Tuple

import numpy as np

from repro.network.graph import WirelessNetwork, attach_shared_network
from repro.perf.counters import GLOBAL_COUNTERS

if TYPE_CHECKING:
    from multiprocessing.shared_memory import SharedMemory

    from repro.network.radio import RadioConfig

__all__ = [
    "PlaneManifest",
    "SegmentArray",
    "SharedNetworkPlane",
    "attach_manifest",
    "attached_network",
    "install_worker_manifests",
    "peak_published_bytes",
    "set_shared_plane_enabled",
    "shared_plane_disabled",
    "shared_plane_enabled",
]


# ----------------------------------------------------------------------
# A/B switch
# ----------------------------------------------------------------------

_ENABLED = True


def set_shared_plane_enabled(enabled: bool) -> None:
    """Globally enable/disable the shared-memory plane (the A/B switch).

    With the plane disabled :meth:`SharedNetworkPlane.publish` refuses
    every network and :func:`attached_network` always declines, so pooled
    sweeps behave exactly as before the plane existed — each worker
    rebuilds through ``cached_network``.  Results are byte-identical
    either way; only warm-up time and RSS change.
    """
    global _ENABLED
    _ENABLED = bool(enabled)


def shared_plane_enabled() -> bool:
    return _ENABLED


@contextmanager
def shared_plane_disabled() -> Iterator[None]:
    """Scoped A arm for tests and A/B comparisons."""
    previous = _ENABLED
    set_shared_plane_enabled(False)
    try:
        yield
    finally:
        set_shared_plane_enabled(previous)


# ----------------------------------------------------------------------
# Segment layout
# ----------------------------------------------------------------------

_ALIGNMENT = 8  # keep every slot aligned for f8/intp views


@dataclass(frozen=True)
class SegmentArray:
    """Placement of one named array inside a plane segment."""

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class PlaneManifest:
    """Everything a worker needs to attach one published deployment.

    Picklable by construction (strings, ints, tuples and the frozen
    ``RadioConfig``): manifests travel to workers through the pool
    initializer's ``initargs``.
    """

    segment: str
    radio: "RadioConfig"
    node_count: int
    nbytes: int
    arrays: Tuple[SegmentArray, ...]


def _pack_layout(
    arrays: Dict[str, np.ndarray],
) -> Tuple[Tuple[SegmentArray, ...], int]:
    """Assign aligned offsets to each array; return (layout, total bytes)."""
    layout: List[SegmentArray] = []
    offset = 0
    for key, array in arrays.items():
        offset = (offset + _ALIGNMENT - 1) & ~(_ALIGNMENT - 1)
        layout.append(
            SegmentArray(
                key=key,
                dtype=array.dtype.str,
                shape=tuple(array.shape),
                offset=offset,
            )
        )
        offset += int(array.nbytes)
    return tuple(layout), max(offset, 1)


def _segment_view(segment: "SharedMemory", slot: SegmentArray) -> np.ndarray:
    """A writable array view over one layout slot of a mapped segment."""
    return np.ndarray(
        slot.shape,
        dtype=np.dtype(slot.dtype),
        buffer=segment.buf,
        offset=slot.offset,
    )


def _segment_views(
    segment: "SharedMemory", layout: Tuple[SegmentArray, ...]
) -> Dict[str, np.ndarray]:
    """Read-only views over every slot — the attach-side array set."""
    views: Dict[str, np.ndarray] = {}
    for slot in layout:
        view = _segment_view(segment, slot)
        view.setflags(write=False)
        views[slot.key] = view
    return views


# ----------------------------------------------------------------------
# Segment lifetime helpers
# ----------------------------------------------------------------------


#: Names created by THIS process (publishing side).  Attaching to one of
#: our own segments must not undo its resource-tracker registration: the
#: tracker keys names in a set, so the attach-side re-registration is a
#: no-op and the single entry belongs to the create — ``unlink`` retires
#: it at close time.
_OWNED_NAMES: set = set()


def _create_segment(name: str, size: int) -> Optional["SharedMemory"]:
    """Create a named segment, reclaiming a stale leftover once.

    Deterministic naming means a run killed mid-sweep leaves exactly the
    names its rerun asks for, so ``FileExistsError`` is treated as "my
    predecessor died": unlink the stale segment and try once more.
    Returns ``None`` when shared memory is unusable on this platform or
    the name still cannot be created — callers degrade to per-worker
    rebuilds rather than failing the sweep.
    """
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - always present on CPython
        return None
    try:
        segment = shared_memory.SharedMemory(name=name, create=True, size=size)
    except FileExistsError:
        _reclaim_stale_segment(name)
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except (OSError, ValueError):
            return None
    except (OSError, ValueError):
        return None
    _OWNED_NAMES.add(name)
    return segment


def _reclaim_stale_segment(name: str) -> None:
    from multiprocessing import shared_memory

    try:
        stale = shared_memory.SharedMemory(name=name)
    except (OSError, ValueError):
        return
    try:
        stale.unlink()
    except OSError:  # pragma: no cover - raced with another reclaimer
        pass
    stale.close()


#: Released segments whose *mapping* must outlive the plane.  ``close()``
#: unmaps immediately even while numpy views are alive (it raises no
#: ``BufferError``), and both the publishing parent (after
#: ``adopt_shared_arrays``) and same-process attachers may still read
#: through such views — so release only unlinks the name and parks the
#: ``SharedMemory`` object here, preventing its ``__del__`` from closing
#: the mapping.  The OS reclaims the memory when the process exits.
_RETIRED_SEGMENTS: List["SharedMemory"] = []


def _release_segment(segment: "SharedMemory") -> None:
    """Unlink the ``/dev/shm`` name now; retire (never unmap) our mapping."""
    _OWNED_NAMES.discard(segment.name)
    try:
        segment.unlink()
    except OSError:
        pass
    _RETIRED_SEGMENTS.append(segment)


# ----------------------------------------------------------------------
# Published-bytes accounting (feeds the CLI peak-RSS report)
# ----------------------------------------------------------------------

_OPEN_BYTES = 0
_PEAK_BYTES = 0


def _note_open_bytes(delta: int) -> None:
    global _OPEN_BYTES, _PEAK_BYTES
    _OPEN_BYTES += delta
    if _OPEN_BYTES > _PEAK_BYTES:
        _PEAK_BYTES = _OPEN_BYTES


def peak_published_bytes() -> int:
    """High-water mark of concurrently published segment bytes.

    The CLI's peak-RSS line prints this once as its ``shared=`` component:
    a mapped segment is resident once per machine no matter how many
    processes attach it, so adding it to any per-process RSS figure would
    double-count.
    """
    return _PEAK_BYTES


# ----------------------------------------------------------------------
# The plane (parent side)
# ----------------------------------------------------------------------

_PLANE_SEQUENCE = itertools.count()
_LIVE_PLANES: "weakref.WeakSet[SharedNetworkPlane]" = weakref.WeakSet()
_ATEXIT_INSTALLED = False


def _track_live_plane(plane: "SharedNetworkPlane") -> None:
    global _ATEXIT_INSTALLED
    _LIVE_PLANES.add(plane)
    if not _ATEXIT_INSTALLED:
        atexit.register(_close_live_planes)
        _ATEXIT_INSTALLED = True


def _close_live_planes() -> None:
    """``atexit`` net: unlink whatever an abnormal exit left published."""
    for plane in list(_LIVE_PLANES):
        plane.close()


class SharedNetworkPlane:
    """Owner of the shared segments holding one sweep's deployments.

    The *parent* process creates one plane per pooled sweep, publishes
    each built network into it, and the pool wiring ships
    :meth:`manifests` to workers via the pool initializer (see
    ``repro.perf.parallel``).  Workers never construct a plane — they
    attach through :func:`attached_network`.

    The plane owns segment lifetime: use it as a context manager (or call
    :meth:`close`); an ``atexit`` hook closes planes leaked by an
    abnormal exit.  One segment is created per published network, named
    ``gmp-plane-<seed>-<plane#>-<segment#>``.
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._plane_index = next(_PLANE_SEQUENCE)
        self._segments: List["SharedMemory"] = []
        self._manifests: Dict[Hashable, PlaneManifest] = {}
        self._nbytes = 0
        self._closed = False

    def segment_name(self, index: int) -> str:
        """The deterministic name of this plane's ``index``-th segment."""
        return f"gmp-plane-{self._seed}-{self._plane_index}-{index}"

    def publish(self, key: Hashable, network: WirelessNetwork) -> bool:
        """Serialize ``network``'s SoA arrays into a new shared segment.

        Returns ``True`` when workers will find ``key`` on the plane
        (idempotent per key).  Returns ``False`` — a clean degrade to
        per-worker ``cached_network`` rebuilds — when the plane is
        disabled, the network is legacy/non-SoA or already locally
        mutated, or shared memory is unavailable.

        On success the *parent's* network adopts the shared views too,
        dropping its private copies, so each deployment is resident once
        per machine rather than once per process.
        """
        if self._closed:
            raise ValueError("cannot publish on a closed plane")
        if key in self._manifests:
            return True
        if not shared_plane_enabled():
            return False
        arrays = network.shared_state_arrays()
        if arrays is None:
            return False
        layout, total = _pack_layout(arrays)
        name = self.segment_name(len(self._segments))
        segment = _create_segment(name, total)
        if segment is None:
            return False
        views: Dict[str, np.ndarray] = {}
        for slot in layout:
            view = _segment_view(segment, slot)
            view[...] = arrays[slot.key]
            view.setflags(write=False)
            views[slot.key] = view
        self._segments.append(segment)
        self._manifests[key] = PlaneManifest(
            segment=name,
            radio=network.radio,
            node_count=int(arrays["locations"].shape[0]),
            nbytes=total,
            arrays=layout,
        )
        self._nbytes += total
        _note_open_bytes(total)
        _track_live_plane(self)
        network.adopt_shared_arrays(views)
        return True

    @property
    def active(self) -> bool:
        """Whether anything is published (pool wiring skips idle planes)."""
        return bool(self._manifests) and not self._closed

    def manifests(self) -> Dict[Hashable, PlaneManifest]:
        """A picklable snapshot for the pool initializer."""
        return dict(self._manifests)

    def published_bytes(self) -> int:
        return self._nbytes

    def close(self) -> None:
        """Unlink every owned segment; idempotent, safe with live views."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            _release_segment(segment)
        self._segments = []
        self._manifests = {}
        _note_open_bytes(-self._nbytes)
        self._nbytes = 0
        _LIVE_PLANES.discard(self)

    def __enter__(self) -> "SharedNetworkPlane":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

_WORKER_MANIFESTS: Dict[Hashable, PlaneManifest] = {}
_ATTACHED_SEGMENTS: Dict[str, "SharedMemory"] = {}


def install_worker_manifests(manifests: Dict[Hashable, PlaneManifest]) -> None:
    """Pool-initializer half of the plane: record what the parent published.

    Runs once per worker process (``ProcessPoolExecutor(initializer=...)``);
    ``repro.experiments.sweep.cached_network`` consults the recorded
    manifests before building anything.
    """
    _WORKER_MANIFESTS.update(manifests)


def _untrack_segment(segment: "SharedMemory") -> None:
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(
            getattr(segment, "_name", segment.name), "shared_memory"
        )
    except Exception:  # pragma: no cover - tracker layout varies by version
        pass


def _attach_segment(name: str) -> Optional["SharedMemory"]:
    segment = _ATTACHED_SEGMENTS.get(name)
    if segment is not None:
        return segment
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - always present on CPython
        return None
    try:
        try:
            attached = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            # Python < 3.13 has no ``track`` parameter: attaching registers
            # the segment with this process's resource tracker, which would
            # unlink it when the *worker* exits — yanking the mapping out
            # from under the parent and its sibling workers.  The
            # publishing plane owns the lifetime; undo the registration —
            # unless this process created the segment itself (the tracker
            # keys names in a set, so that single entry belongs to the
            # create and is retired by ``unlink`` at close time).
            attached = shared_memory.SharedMemory(name=name)
            if name not in _OWNED_NAMES:
                _untrack_segment(attached)
    except (OSError, ValueError):
        return None
    _ATTACHED_SEGMENTS[name] = attached
    return attached


def attach_manifest(manifest: PlaneManifest) -> Optional[WirelessNetwork]:
    """A zero-copy ``WirelessNetwork`` over a published segment, or ``None``.

    The reconstruction copies no node state: every array the network
    reads is a read-only view of the mapped buffer, and ``SensorNode``
    objects materialize lazily on first access.  ``None`` means the
    segment is gone or shared memory is unusable — callers fall back to
    building the network from its seed.
    """
    segment = _attach_segment(manifest.segment)
    if segment is None:
        return None
    return attach_shared_network(
        manifest.radio, _segment_views(segment, manifest.arrays)
    )


def attached_network(key: Hashable) -> Optional[WirelessNetwork]:
    """The published deployment for ``key``, if this process can attach it.

    The worker-side entry point ``cached_network`` consults before
    building.  Returns ``None`` — the caller rebuilds — when the plane is
    disabled, nothing was published for ``key``, or attaching fails.
    """
    if not shared_plane_enabled() or not _WORKER_MANIFESTS:
        return None
    counter = GLOBAL_COUNTERS.counter("network.shm_attach")
    manifest = _WORKER_MANIFESTS.get(key)
    network = attach_manifest(manifest) if manifest is not None else None
    if network is None:
        counter.misses += 1
        return None
    counter.hits += 1
    return network
