"""Hot-path geometry memoization: Fermat points, reduction ratios, rrSTR trees.

Every cache here is a *pure* memo: keys are exact coordinate tuples, values
are exactly what the underlying computation returns, so a hit is
bit-identical to a fresh computation and simulation results cannot depend on
cache state (enforced by ``tests/perf/test_cache.py``).  Caches are
process-local; parallel workers each warm their own.

The per-hop redundancy being removed (paper Section 4.2): rrSTR's greedy
merge calls ``reduction_ratio_point`` for every destination pair, and the
refinement passes recompute Fermat points of the same vertex triples once
per pass; across the hops of one multicast task, perimeter-mode revisits and
repeated tasks rebuild identical rrSTR trees from scratch.

``set_caching_enabled(False)`` (or the :func:`caches_disabled` context
manager) turns every cache into a pass-through for A/B correctness tests and
for the cold-path microbenchmarks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    Dict,
    Generic,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.geometry.fermat import fermat_point
from repro.geometry.point import Point
from repro.perf.counters import GLOBAL_COUNTERS
# NOTE: ``repro.steiner.reduction_ratio`` is imported lazily inside
# ``cached_reduction_ratio_point``: the steiner package imports this module
# (rrSTR uses the caches), and the network layer now imports ``repro.perf``
# for the batched kernels, so an eager import here would close an import
# cycle network -> perf -> steiner -> perf.

_ENABLED = True

#: Entry caps; a full cache is flushed outright (cheap, and the memo is
#: warm again within one task).  Keys are 6-float tuples, so the resident
#: set stays in the tens of MB even at the cap.
_POINT_CACHE_CAP = 200_000

_FERMAT_CACHE: Dict[Tuple[float, ...], Point] = {}
_RR_CACHE: Dict[Tuple[float, ...], Tuple[float, Point]] = {}


def set_caching_enabled(enabled: bool) -> None:
    """Globally enable/disable every perf cache (results are unaffected)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def caching_enabled() -> bool:
    return _ENABLED


@contextmanager
def caches_disabled() -> Iterator[None]:
    """Run a block with all perf caches bypassed (for A/B equality tests)."""
    previous = _ENABLED
    set_caching_enabled(False)
    try:
        yield
    finally:
        set_caching_enabled(previous)


def clear_caches() -> None:
    """Drop all memoized geometry (counters are left alone)."""
    _FERMAT_CACHE.clear()
    _RR_CACHE.clear()


def cache_stats() -> Dict[str, Dict[str, float]]:
    """Current hit/miss/size stats of the module-level geometry caches."""
    out = {}
    for name, store in (("fermat_point", _FERMAT_CACHE), ("reduction_ratio", _RR_CACHE)):
        ctr = GLOBAL_COUNTERS.counter(name)
        out[name] = {
            "hits": float(ctr.hits),
            "misses": float(ctr.misses),
            "hit_rate": ctr.hit_rate,
            "entries": float(len(store)),
        }
    return out


def cached_fermat_point(a: Point, b: Point, c: Point) -> Point:
    """Memoized :func:`repro.geometry.fermat.fermat_point`."""
    if not _ENABLED:
        return fermat_point(a, b, c)
    key = (a[0], a[1], b[0], b[1], c[0], c[1])
    counter = GLOBAL_COUNTERS.counter("fermat_point")
    found = _FERMAT_CACHE.get(key)
    if found is not None:
        counter.hits += 1
        return found
    counter.misses += 1
    result = fermat_point(a, b, c)
    if len(_FERMAT_CACHE) >= _POINT_CACHE_CAP:
        _FERMAT_CACHE.clear()
    _FERMAT_CACHE[key] = result
    return result


def cached_reduction_ratio_point(
    s: Point, u: Point, v: Point
) -> Tuple[float, Point]:
    """Memoized :func:`repro.steiner.reduction_ratio.reduction_ratio_point`."""
    from repro.steiner.reduction_ratio import reduction_ratio_point

    if not _ENABLED:
        return reduction_ratio_point(s, u, v)
    key = (s[0], s[1], u[0], u[1], v[0], v[1])
    counter = GLOBAL_COUNTERS.counter("reduction_ratio")
    found = _RR_CACHE.get(key)
    if found is not None:
        counter.hits += 1
        return found
    counter.misses += 1
    result = reduction_ratio_point(s, u, v)
    if len(_RR_CACHE) >= _POINT_CACHE_CAP:
        _RR_CACHE.clear()
    _RR_CACHE[key] = result
    return result


def cached_reduction_ratio_pairs(
    s: Point, pairs: "Sequence[Tuple[Point, Point]]"
) -> "List[Tuple[float, Tuple[float, float]]]":
    """Memoized batch reduction ratios: ``[(rr, (tx, ty)), ...]`` per pair.

    The batch analogue of :func:`cached_reduction_ratio_point`: known pairs
    are served from the same ``_RR_CACHE`` the scalar path populates, and
    only the misses go through one
    :func:`repro.perf.kernels.reduction_ratio_batch` call (whose rows are
    bit-identical to the scalar function).  With caching disabled the whole
    batch is computed fresh — exactly like the scalar pass-through.
    """
    import numpy as np

    from repro.perf.kernels import reduction_ratio_batch

    if not _ENABLED:
        us = np.array([[u[0], u[1]] for u, _ in pairs], dtype=float)
        vs = np.array([[v[0], v[1]] for _, v in pairs], dtype=float)
        rr_arr, t_arr = reduction_ratio_batch(s, us, vs)
        return [
            (rr, (tx, ty))
            for rr, (tx, ty) in zip(rr_arr.tolist(), t_arr.tolist())
        ]
    counter = GLOBAL_COUNTERS.counter("reduction_ratio")
    sx, sy = s[0], s[1]
    results: List[Tuple[float, Tuple[float, float]]] = []
    miss_indices: List[int] = []
    for i, (u, v) in enumerate(pairs):
        found = _RR_CACHE.get((sx, sy, u[0], u[1], v[0], v[1]))
        if found is not None:
            counter.hits += 1
            rr, t = found
            results.append((rr, (t[0], t[1])))
        else:
            counter.misses += 1
            miss_indices.append(i)
            results.append((0.0, (0.0, 0.0)))  # overwritten from the batch
    if miss_indices:
        us = np.array([[pairs[i][0][0], pairs[i][0][1]] for i in miss_indices])
        vs = np.array([[pairs[i][1][0], pairs[i][1][1]] for i in miss_indices])
        rr_arr, t_arr = reduction_ratio_batch(s, us, vs)
        for pos, i in enumerate(miss_indices):
            rr = float(rr_arr[pos])
            tx = float(t_arr[pos, 0])
            ty = float(t_arr[pos, 1])
            u, v = pairs[i]
            if len(_RR_CACHE) >= _POINT_CACHE_CAP:
                _RR_CACHE.clear()
            _RR_CACHE[(sx, sy, u[0], u[1], v[0], v[1])] = (rr, Point(tx, ty))
            results[i] = (rr, (tx, ty))
    return results


V = TypeVar("V")


class TreeCache(Generic[V]):
    """Bounded memo for mutable values exposing a ``copy()`` method.

    Used by :class:`repro.routing.gmp.GMPProtocol` to reuse rrSTR trees:
    GMP's splitting step *mutates* the tree it routes with, so the cache
    stores a pristine copy at :meth:`put` and hands out a fresh copy on
    every :meth:`get` — callers own their value outright.

    Eviction is FIFO over insertion order (plain dict order), which is
    deterministic under any ``PYTHONHASHSEED``.
    """

    def __init__(self, name: str, max_entries: int = 50_000) -> None:
        if max_entries < 1:
            raise ValueError(f"cache needs at least one entry, got {max_entries}")
        self._name = name
        self._max_entries = max_entries
        self._store: Dict[Hashable, V] = {}

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: Hashable) -> Optional[V]:
        """A private copy of the cached value, or ``None`` (miss / disabled)."""
        if not _ENABLED:
            return None
        counter = GLOBAL_COUNTERS.counter(self._name)
        found = self._store.get(key)
        if found is None:
            counter.misses += 1
            return None
        counter.hits += 1
        return found.copy()  # type: ignore[attr-defined]

    def put(self, key: Hashable, value: V) -> None:
        """Store a pristine copy of ``value`` (no-op while disabled)."""
        if not _ENABLED:
            return
        if len(self._store) >= self._max_entries:
            self._store.pop(next(iter(self._store)))
        self._store[key] = value.copy()  # type: ignore[attr-defined]

    def clear(self) -> None:
        self._store.clear()
