"""Deterministic process-pool fan-out over independent work units.

The contract: ``run_units(fn, args_list, workers)`` returns exactly
``[fn(*args) for args in args_list]`` — same values, same order — no matter
how many workers execute it.  That holds because

* every unit is a pure function of its arguments (networks and task batches
  are re-derived from seeds inside the worker, never shipped),
* results are collected by *submission index*, never completion order,
* workers share no mutable state with the parent or each other.

Worker processes keep per-process memos (see
:func:`repro.experiments.sweep.cached_network`), so each worker reconstructs
a given network once and reuses it across all units it executes.  When the
caller passes a published :class:`repro.perf.shm.SharedNetworkPlane`, the
pool initializer additionally hands every worker the plane's manifests, and
``cached_network`` *attaches* the parent's deployments zero-copy instead of
rebuilding them — results are byte-identical either way (the plane maps the
exact bytes a fresh build produces).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:
    from repro.perf.shm import PlaneManifest, SharedNetworkPlane

ProgressFn = Callable[[str], None]


def _plane_initializer(
    plane: "Optional[SharedNetworkPlane]",
) -> Tuple[Optional[Callable[..., None]], Tuple[Any, ...]]:
    """``(initializer, initargs)`` publishing a plane's manifests to workers.

    ``(None, ())`` — a no-op initializer — when no plane was provided or
    nothing is published on it, so pools behave exactly as before the
    shared-memory plane existed.
    """
    if plane is None or not plane.active:
        return None, ()
    from repro.perf.shm import install_worker_manifests

    manifests: "dict[Any, PlaneManifest]" = plane.manifests()
    return install_worker_manifests, (manifests,)


def run_units(
    fn: Callable[..., Any],
    args_list: Sequence[Tuple[Any, ...]],
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
    describe: Optional[Callable[[int], str]] = None,
    plane: "Optional[SharedNetworkPlane]" = None,
) -> List[Any]:
    """Run ``fn(*args)`` for every args tuple, results in submission order.

    Args:
        fn: A picklable module-level function (executed in-process when
            ``workers <= 1``, in a :class:`~concurrent.futures.ProcessPoolExecutor`
            otherwise).
        args_list: One picklable argument tuple per unit.
        workers: Process count; ``<= 1`` means serial in-process execution.
        progress: Optional callback, invoked once per completed unit.
        describe: Optional unit-index -> label used in progress messages.
        plane: Optional published shared-memory plane; its manifests reach
            every worker via the pool initializer so ``cached_network``
            attaches deployments instead of rebuilding them.

    Returns:
        ``[fn(*args) for args in args_list]`` — bit-identical regardless of
        ``workers``.
    """

    def say(index: int) -> None:
        if progress is not None:
            label = describe(index) if describe is not None else f"unit {index + 1}"
            progress(f"{label} done ({index + 1}/{len(args_list)})")

    if workers <= 1 or len(args_list) <= 1:
        results = []
        for index, args in enumerate(args_list):
            results.append(fn(*args))
            say(index)
        return results

    from concurrent.futures import ProcessPoolExecutor

    initializer, initargs = _plane_initializer(plane)
    results = [None] * len(args_list)
    with ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=initargs
    ) as pool:
        futures = [pool.submit(fn, *args) for args in args_list]
        # Collect by submission index — canonical merge order; completion
        # order (which is scheduling-dependent) never influences output.
        for index, future in enumerate(futures):
            results[index] = future.result()
            say(index)
    return results


def stream_units(
    fn: Callable[..., Any],
    args_iter: Iterable[Tuple[Any, ...]],
    workers: int = 1,
    window: int = 0,
    plane: "Optional[SharedNetworkPlane]" = None,
) -> Iterator[Any]:
    """Streaming :func:`run_units`: unbounded input, bounded in-flight work.

    ``run_units`` materializes every argument tuple and every result — fine
    for fixed sweeps, linear-memory for open-ended session streams.  This
    generator instead keeps at most ``window`` units in flight and yields
    results strictly in *submission order*, so the caller folds them exactly
    as a serial run would: the output sequence is bit-identical for any
    ``workers``/``window`` combination (the PR 2 contract), while memory
    stays bounded by the window, not the stream length.

    Args:
        fn: A picklable module-level function (executed in-process when
            ``workers <= 1``).
        args_iter: Lazily-produced argument tuples; may be unbounded.  It
            is only advanced as window slots free up, so a generator
            backing it can checkpoint its own cursor safely.
        workers: Process count; ``<= 1`` means serial in-process execution.
        window: Maximum in-flight units when pooled (default:
            ``4 * workers``).  Larger windows hide worker latency jitter;
            the result order never changes.
        plane: Optional published shared-memory plane, forwarded to the
            pool initializer exactly as in :func:`run_units`.

    Yields:
        ``fn(*args)`` per input tuple, in submission order.
    """
    if workers <= 1:
        for args in args_iter:
            yield fn(*args)
        return

    from collections import deque
    from concurrent.futures import ProcessPoolExecutor

    if window <= 0:
        window = 4 * workers
    window = max(window, workers)
    initializer, initargs = _plane_initializer(plane)
    with ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=initargs
    ) as pool:
        pending: "deque[Any]" = deque()
        for args in args_iter:
            while len(pending) >= window:
                # Head-of-line first: submission order is the fold order.
                yield pending.popleft().result()
            pending.append(pool.submit(fn, *args))
        while pending:
            yield pending.popleft().result()
