"""Cache hit/miss counters and per-stage wall-time accounting.

Counters are process-local: a parallel worker accumulates into its own
``GLOBAL_COUNTERS`` and ships a snapshot *delta* back with its results, which
the parent merges (see :func:`repro.experiments.sweep.run_sweep_unit`), so
hit rates surface correctly for serial and parallel runs alike.

Wall time is never read here: :class:`StageTimer` takes an explicit ``clock``
callable (``time.perf_counter`` injected by the CLI / scripts layer, or
``None`` for a no-op).  Simulation code stays free of wall-clock reads
(reprolint R002); timing is an operator-layer concern.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional


class CacheCounter:
    """Hit/miss tally of one named cache."""

    __slots__ = ("name", "hits", "misses")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheCounter({self.name}: {self.hits}h/{self.misses}m)"


class BatchCounter:
    """Batch count / total item tally of one named vector kernel."""

    __slots__ = ("name", "batches", "items")

    def __init__(self, name: str) -> None:
        self.name = name
        self.batches = 0
        self.items = 0

    def record(self, size: int) -> None:
        """Tally one kernel invocation that processed ``size`` elements."""
        self.batches += 1
        self.items += size

    @property
    def mean_batch_size(self) -> float:
        """Average elements per kernel call (0.0 when never invoked)."""
        return self.items / self.batches if self.batches else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchCounter({self.name}: {self.batches}b/{self.items}i)"


class PerfCounters:
    """A registry of cache counters, vector-batch counters and stage wall times."""

    def __init__(self) -> None:
        self._counters: Dict[str, CacheCounter] = {}
        self._batches: Dict[str, BatchCounter] = {}
        self._stage_seconds: Dict[str, float] = {}

    def counter(self, name: str) -> CacheCounter:
        """Get-or-create the counter called ``name``."""
        found = self._counters.get(name)
        if found is None:
            found = CacheCounter(name)
            self._counters[name] = found
        return found

    def batch(self, name: str) -> BatchCounter:
        """Get-or-create the vector-kernel batch counter called ``name``."""
        found = self._batches.get(name)
        if found is None:
            found = BatchCounter(name)
            self._batches[name] = found
        return found

    def add_stage_seconds(self, stage: str, seconds: float) -> None:
        """Accumulate measured wall time under ``stage``."""
        self._stage_seconds[stage] = self._stage_seconds.get(stage, 0.0) + seconds

    def stage_seconds(self, stage: str) -> float:
        return self._stage_seconds.get(stage, 0.0)

    # ------------------------------------------------------------------
    # Snapshots (flat dicts — picklable, mergeable across processes)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{"<cache>.hits": n, ..., "stage.<name>": s}`` state."""
        out: Dict[str, float] = {}
        for name, ctr in self._counters.items():
            out[f"{name}.hits"] = float(ctr.hits)
            out[f"{name}.misses"] = float(ctr.misses)
        for name, batch in self._batches.items():
            out[f"vector.{name}.batches"] = float(batch.batches)
            out[f"vector.{name}.items"] = float(batch.items)
        for stage, seconds in self._stage_seconds.items():
            out[f"stage.{stage}"] = seconds
        return out

    def delta_since(self, before: Mapping[str, float]) -> Dict[str, float]:
        """Counter movement since a prior :meth:`snapshot` (zeros dropped)."""
        now = self.snapshot()
        delta = {}
        for key, value in now.items():
            moved = value - before.get(key, 0.0)
            if moved:
                delta[key] = moved
        return delta

    def merge_delta(self, delta: Mapping[str, float]) -> None:
        """Fold a worker's snapshot delta into this registry."""
        for key, value in delta.items():
            if key.startswith("stage."):
                self.add_stage_seconds(key[len("stage."):], value)
                continue
            if key.startswith("vector."):
                name, _, field = key[len("vector."):].rpartition(".")
                batch = self.batch(name)
                if field == "batches":
                    batch.batches += int(value)
                elif field == "items":
                    batch.items += int(value)
                continue
            name, _, field = key.rpartition(".")
            ctr = self.counter(name)
            if field == "hits":
                ctr.hits += int(value)
            elif field == "misses":
                ctr.misses += int(value)

    def reset(self) -> None:
        self._counters.clear()
        self._batches.clear()
        self._stage_seconds.clear()

    def render(self) -> str:
        """One line per cache / kernel / stage, for operator-facing reports."""
        lines = []
        for name, ctr in sorted(self._counters.items()):
            lines.append(
                f"{name}: {ctr.hits} hits / {ctr.misses} misses "
                f"({100.0 * ctr.hit_rate:.1f}% hit rate)"
            )
        for name, batch in sorted(self._batches.items()):
            lines.append(
                f"vector {name}: {batch.batches} batches / {batch.items} items "
                f"(mean batch size {batch.mean_batch_size:.1f})"
            )
        for stage, seconds in sorted(self._stage_seconds.items()):
            lines.append(f"stage {stage}: {seconds:.3f}s")
        return "\n".join(lines) if lines else "(no perf counters recorded)"


#: Process-wide registry every cache reports into.
GLOBAL_COUNTERS = PerfCounters()


def merge_worker_perf(
    deltas: "Iterable[Mapping[str, float]]", used_pool: bool
) -> None:
    """Fold worker-side perf-counter deltas into this process's registry.

    The canonical merge step of every pooled sweep: work units return
    ``(result, GLOBAL_COUNTERS.delta_since(before))`` and the parent calls
    this with the deltas *in submission order* — counter addition is
    commutative, so the merged totals are identical for any worker count,
    and ``--perf`` reports whole-sweep counters instead of silently
    dropping whatever moved inside pool workers.

    Only merge when a pool actually executed the units (``used_pool``):
    inline execution already accumulated into this process's
    ``GLOBAL_COUNTERS`` directly, and merging again would double-count.
    """
    if not used_pool:
        return
    for delta in deltas:
        GLOBAL_COUNTERS.merge_delta(delta)


class StageTimer:
    """Context manager accumulating one stage's wall time via an injected clock.

    ``clock`` is a zero-argument callable returning seconds (the operator
    layer passes ``time.perf_counter``); with ``clock=None`` the timer is a
    no-op, so library code can wrap stages unconditionally.
    """

    def __init__(
        self,
        stage: str,
        clock: Optional[Callable[[], float]] = None,
        counters: Optional[PerfCounters] = None,
    ) -> None:
        self._stage = stage
        self._clock = clock
        self._counters = counters if counters is not None else GLOBAL_COUNTERS
        self._start: Optional[float] = None

    def __enter__(self) -> "StageTimer":
        if self._clock is not None:
            self._start = self._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._clock is not None and self._start is not None:
            self._counters.add_stage_seconds(self._stage, self._clock() - self._start)
