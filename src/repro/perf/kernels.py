"""Batched NumPy geometry kernels, bit-identical to their scalar references.

Every kernel here evaluates *many* instances of a scalar geometry routine in
one vectorized call, using the **same elementwise formulas in the same
operation order** as the scalar reference, so each result is the same
IEEE-754 double a per-element call would produce:

========================  =================================================
kernel                    scalar reference
========================  =================================================
``fermat_point_batch``    :func:`repro.geometry.fermat.fermat_point`
``reduction_ratio_batch`` :func:`repro.steiner.reduction_ratio.reduction_ratio_point`
``disk_mask``             the per-point test in ``SpatialGrid.indices_within``
``unit_disk_rows``        ``WirelessNetwork._build_neighbor_lists`` (whole graph)
``gabriel_keep_mask``     :func:`repro.network.planar.gabriel_neighbors`
``rng_keep_mask``         :func:`repro.network.planar.rng_neighbors`
``nearest_index`` etc.    the next-hop argmin scans in :mod:`repro.routing.greedy`
========================  =================================================

Bit-identity is achievable because the scalar layer restricts itself to
operations that IEEE 754 defines exactly (add/sub/mul/div/sqrt are correctly
rounded, and NumPy performs the identical double operations) plus ``atan2``
/ ``cos`` / ``sin``, which CPython and NumPy both delegate to the platform
libm.  ``math.hypot`` is the one exception — CPython ships its own
algorithm — which is why :func:`repro.geometry.point.distance` uses the
``sqrt(dx*dx + dy*dy)`` form.  The equality is enforced two ways: seeded
property tests assert ``==`` (not ``allclose``) against the scalar reference
over thousands of random and degenerate inputs, and the experiment digests
(:mod:`repro.engine.digest`) must be byte-identical with vectorization on
and off.

Rows that reach a scalar code path with data-dependent control flow (the
parallel-Simpson-line fallback and the Weiszfeld fallback inside
``fermat_point``) are delegated to the scalar function per-row; they are a
vanishing fraction of real workloads.

``set_vectorized_enabled(False)`` (or the :func:`vectorized_disabled`
context manager) routes every call site back to its scalar loop, mirroring
``repro.perf.cache.set_caching_enabled`` — the A/B switch behind the digest
equality tests and the cold-path microbenchmarks.  Each kernel invocation is
tallied in :data:`~repro.perf.counters.GLOBAL_COUNTERS` under
``vector.<name>`` (batch count and total items), surfaced by the CLI
``--perf`` report.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.fermat import fermat_point
from repro.geometry.point import Point
from repro.perf.counters import GLOBAL_COUNTERS

_ENABLED = True

#: Kernel name → dotted path of the scalar routine it must match bit-for-bit.
#: reprolint R013 checks this table: every public kernel below needs an entry
#: whose target resolves in the project, and a parity test in ``tests/perf/``
#: must reference the kernel by name.  The prose table in the module
#: docstring is for humans; this one is for the analyzer.
SCALAR_REFERENCES: Dict[str, str] = {
    "fermat_point_batch": "repro.geometry.fermat.fermat_point",
    "reduction_ratio_batch": "repro.steiner.reduction_ratio.reduction_ratio_point",
    "pair_indices": "repro.steiner.rrstr.rrstr",
    "disk_mask": "repro.network.graph.SpatialGrid.indices_within",
    "unit_disk_rows": "repro.network.graph.WirelessNetwork._build_neighbor_lists",
    "gabriel_keep_mask": "repro.network.planar.gabriel_neighbors",
    "rng_keep_mask": "repro.network.planar.rng_neighbors",
    "distances_to": "repro.geometry.point.distance",
    "pairwise_distances": "repro.geometry.point.distance",
    "distances_sq_to": "repro.geometry.point.distance_sq",
    "nearest_index": "repro.routing.greedy.closest_neighbor_to",
    "group_distance_sums": "repro.routing.greedy.total_distance",
}

#: Minimum batch size for which call sites prefer the vectorized kernel;
#: below this the per-call NumPy dispatch overhead exceeds the scalar loop.
#: Purely a performance gate — results are identical on either side.
MIN_BATCH = 4

#: Tolerances mirrored from the scalar layer (values must stay in lockstep
#: with :mod:`repro.geometry.primitives` / :mod:`repro.geometry.fermat`).
_EPS = 1e-12
_ANGLE_THRESHOLD = 2.0 * math.pi / 3.0 - 1e-12
_SLACK = 1e-12

#: Rotation constants exactly as ``rotate_about`` computes them for the
#: outward-apex construction (``theta = +/- pi / 3``).
_COS_CCW = math.cos(math.pi / 3.0)
_SIN_CCW = math.sin(math.pi / 3.0)
_COS_CW = math.cos(-math.pi / 3.0)
_SIN_CW = math.sin(-math.pi / 3.0)


def set_vectorized_enabled(enabled: bool) -> None:
    """Globally enable/disable the batched kernels (results are unaffected)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def vectorized_enabled() -> bool:
    return _ENABLED


@contextmanager
def vectorized_disabled() -> Iterator[None]:
    """Run a block with every call site on its scalar path (A/B testing)."""
    previous = _ENABLED
    set_vectorized_enabled(False)
    try:
        yield
    finally:
        set_vectorized_enabled(previous)


def _record(name: str, size: int) -> None:
    GLOBAL_COUNTERS.batch(name).record(size)


def _dist(ax: np.ndarray, ay: np.ndarray, bx: np.ndarray, by: np.ndarray) -> np.ndarray:
    """Elementwise Euclidean distance, same formula as ``geometry.point.distance``."""
    dx = ax - bx
    dy = ay - by
    return np.sqrt(dx * dx + dy * dy)


# ----------------------------------------------------------------------
# Fermat / Torricelli points
# ----------------------------------------------------------------------


def fermat_point_batch(triples: np.ndarray) -> np.ndarray:
    """Fermat points of ``m`` triangles given as an ``(m, 6)`` array.

    Columns are ``(ax, ay, bx, by, cx, cy)``; returns an ``(m, 2)`` array
    where row ``i`` equals ``fermat_point(a_i, b_i, c_i)`` bit-for-bit.
    """
    tri = np.asarray(triples, dtype=float)
    m = tri.shape[0]
    out = np.empty((m, 2), dtype=float)
    if m == 0:
        return out
    _record("fermat_point", m)
    ax, ay, bx, by, cx, cy = (tri[:, i] for i in range(6))
    done = np.zeros(m, dtype=bool)

    def settle(mask: np.ndarray, px: np.ndarray, py: np.ndarray) -> None:
        take = mask & ~done
        if take.any():
            out[take, 0] = px[take] if isinstance(px, np.ndarray) else px
            out[take, 1] = py[take] if isinstance(py, np.ndarray) else py
        done[take] = True

    # Coincident-vertex degeneracies, in the scalar branch order.
    co_ab = (np.abs(ax - bx) <= _EPS) & (np.abs(ay - by) <= _EPS)
    co_ac = (np.abs(ax - cx) <= _EPS) & (np.abs(ay - cy) <= _EPS)
    settle(co_ab | co_ac, ax, ay)
    co_bc = (np.abs(bx - cx) <= _EPS) & (np.abs(by - cy) <= _EPS)
    settle(co_bc, bx, by)

    # Wide-angle (>= 120 degree) vertices; ``angle_at`` is
    # ``atan2(|cross|, dot)`` of the two edge vectors at the vertex.
    def angle(ux: np.ndarray, uy: np.ndarray, vx: np.ndarray, vy: np.ndarray) -> np.ndarray:
        dot = ux * vx + uy * vy
        cross = ux * vy - uy * vx
        return np.arctan2(np.abs(cross), dot)

    settle(angle(bx - ax, by - ay, cx - ax, cy - ay) >= _ANGLE_THRESHOLD, ax, ay)
    settle(angle(ax - bx, ay - by, cx - bx, cy - by) >= _ANGLE_THRESHOLD, bx, by)
    settle(angle(ax - cx, ay - cy, bx - cx, by - cy) >= _ANGLE_THRESHOLD, cx, cy)

    general = ~done
    if not general.any():
        return out

    # Outward equilateral apexes (``rotate_about`` by +/- 60 degrees, keep
    # the candidate farther from the opposite vertex — ties keep CCW).
    def rot(px: np.ndarray, py: np.ndarray, vx: np.ndarray, vy: np.ndarray,
            cos_t: float, sin_t: float) -> Tuple[np.ndarray, np.ndarray]:
        dx = px - vx
        dy = py - vy
        return vx + dx * cos_t - dy * sin_t, vy + dx * sin_t + dy * cos_t

    def outward_apex(
        base_ax: np.ndarray, base_ay: np.ndarray,
        base_bx: np.ndarray, base_by: np.ndarray,
        ox: np.ndarray, oy: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        ccw_x, ccw_y = rot(base_bx, base_by, base_ax, base_ay, _COS_CCW, _SIN_CCW)
        cw_x, cw_y = rot(base_bx, base_by, base_ax, base_ay, _COS_CW, _SIN_CW)
        use_ccw = _dist(ccw_x, ccw_y, ox, oy) >= _dist(cw_x, cw_y, ox, oy)
        return np.where(use_ccw, ccw_x, cw_x), np.where(use_ccw, ccw_y, cw_y)

    apex_bc_x, apex_bc_y = outward_apex(bx, by, cx, cy, ax, ay)
    apex_ca_x, apex_ca_y = outward_apex(cx, cy, ax, ay, bx, by)

    # Simpson-line intersection (``segment_intersection(a, apex_bc, b, apex_ca)``).
    rx = apex_bc_x - ax
    ry = apex_bc_y - ay
    sx = apex_ca_x - bx
    sy = apex_ca_y - by
    denom = rx * sy - ry * sx
    qpx = bx - ax
    qpy = by - ay
    parallel = np.abs(denom) < _EPS
    with np.errstate(divide="ignore", invalid="ignore"):
        t = (qpx * sy - qpy * sx) / denom
        u = (qpx * ry - qpy * rx) / denom
    inside = (
        (-_SLACK <= t) & (t <= 1.0 + _SLACK) & (-_SLACK <= u) & (u <= 1.0 + _SLACK)
    )
    clean = general & ~parallel & inside
    fallback = general & ~clean

    if clean.any():
        hx = ax + t * rx
        hy = ay + t * ry
        # ``min((a, b, c, hit), key=star)`` with star(p) = d(p,a)+d(p,b)+d(p,c)
        # evaluated left-associatively; np.argmin keeps the first minimum,
        # matching Python min's first-wins tie rule.
        d_ab = _dist(ax, ay, bx, by)
        d_ac = _dist(ax, ay, cx, cy)
        d_bc = _dist(bx, by, cx, cy)
        star_a = (0.0 + d_ab) + d_ac
        star_b = (d_ab + 0.0) + d_bc
        star_c = (d_ac + d_bc) + 0.0
        star_h = (_dist(hx, hy, ax, ay) + _dist(hx, hy, bx, by)) + _dist(hx, hy, cx, cy)
        pick = np.argmin(np.stack([star_a, star_b, star_c, star_h]), axis=0)
        px = np.choose(pick, [ax, bx, cx, hx])
        py = np.choose(pick, [ay, by, cy, hy])
        settle(clean, px, py)

    # Data-dependent scalar paths (parallel Simpson lines, Weiszfeld
    # fallback): delegate the whole row to the scalar reference.
    for i in np.flatnonzero(fallback):
        point = fermat_point(
            Point(ax[i], ay[i]), Point(bx[i], by[i]), Point(cx[i], cy[i])
        )
        out[i, 0] = point[0]
        out[i, 1] = point[1]
    return out


# ----------------------------------------------------------------------
# Reduction ratios (rrSTR pair seeding)
# ----------------------------------------------------------------------


def reduction_ratio_batch(
    source: Point, us: np.ndarray, vs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Reduction ratios and Steiner points of ``n`` destination pairs.

    ``us`` / ``vs`` are ``(n, 2)`` destination coordinates sharing ``source``;
    returns ``(rr, t)`` with ``rr`` shaped ``(n,)`` and ``t`` shaped
    ``(n, 2)``, each row bit-equal to
    ``reduction_ratio_point(source, u_i, v_i)``.
    """
    us = np.asarray(us, dtype=float)
    vs = np.asarray(vs, dtype=float)
    n = us.shape[0]
    if n == 0:
        return np.empty(0, dtype=float), np.empty((0, 2), dtype=float)
    _record("reduction_ratio", n)
    sx = float(source[0])
    sy = float(source[1])
    triples = np.empty((n, 6), dtype=float)
    triples[:, 0] = sx
    triples[:, 1] = sy
    triples[:, 2:4] = us
    triples[:, 4:6] = vs
    t = fermat_point_batch(triples)
    d_su = _dist(sx, sy, us[:, 0], us[:, 1])
    d_sv = _dist(sx, sy, vs[:, 0], vs[:, 1])
    direct = d_su + d_sv
    d_st = _dist(sx, sy, t[:, 0], t[:, 1])
    d_tu = _dist(t[:, 0], t[:, 1], us[:, 0], us[:, 1])
    d_tv = _dist(t[:, 0], t[:, 1], vs[:, 0], vs[:, 1])
    steiner_length = (d_st + d_tu) + d_tv
    degenerate = np.abs(direct) <= _EPS
    safe_direct = np.where(degenerate, 1.0, direct)
    rr = np.where(degenerate, 0.0, 1.0 - steiner_length / safe_direct)
    return rr, t


def pair_indices(count: int) -> Tuple[np.ndarray, np.ndarray]:
    """All unordered index pairs ``i < j`` in nested-loop (row-major) order.

    Matches the ``for i: for j > i`` enumeration the scalar rrSTR seeding
    uses, so batch results can be consumed positionally.
    """
    return np.triu_indices(count, k=1)


# ----------------------------------------------------------------------
# Spatial queries
# ----------------------------------------------------------------------


def disk_mask(
    xs: np.ndarray, ys: np.ndarray, px: float, py: float, radius_sq: float
) -> np.ndarray:
    """Which of the points lie within ``sqrt(radius_sq)`` of ``(px, py)``.

    Identical to the scalar per-point test in ``SpatialGrid.indices_within``:
    ``dx*dx + dy*dy <= radius_sq`` on the raw coordinate differences.
    """
    _record("grid_disk", xs.shape[0])
    dx = xs - px
    dy = ys - py
    return dx * dx + dy * dy <= radius_sq


def unit_disk_rows(
    xs: np.ndarray, ys: np.ndarray, radius: float
) -> Tuple[np.ndarray, np.ndarray]:
    """CSR adjacency ``(indptr, indices)`` of the unit-disk graph in one call.

    Row ``i`` (``indices[indptr[i]:indptr[i+1]]``) lists, ascending, every
    ``j != i`` with ``dx*dx + dy*dy <= radius*radius`` — the same inclusive
    disk test, on the same raw coordinate differences, as the per-node
    ``SpatialGrid`` range queries in
    ``WirelessNetwork._build_neighbor_lists``, so both construction paths
    yield identical rows.

    The batch construction bins points into a ``radius``-sized grid (one
    stable argsort), then tests each occupied cell's members against the
    concatenated 3x3 candidate neighborhood with a single broadcast mask —
    no per-node Python loop over candidates.
    """
    n = xs.shape[0]
    indptr = np.zeros(n + 1, dtype=np.intp)
    if n == 0:
        return indptr, np.empty(0, dtype=np.intp)
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    _record("adjacency", n)
    radius_sq = radius * radius
    cell_x = np.floor(xs / radius).astype(np.int64)
    cell_y = np.floor(ys / radius).astype(np.int64)
    # Pack (cx, cy) into one integer key with a one-cell pad on each side so
    # the +/-1 neighbor offsets of edge cells never alias another row.
    span_y = int(cell_y.max() - cell_y.min()) + 3
    key = (cell_x - cell_x.min() + 1) * span_y + (cell_y - cell_y.min() + 1)
    order = np.argsort(key, kind="stable")  # ties keep ascending node id
    sorted_keys = key[order]
    breaks = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.intp), breaks))
    ends = np.concatenate((breaks, np.asarray([n], dtype=np.intp)))
    cells = {
        int(sorted_keys[s]): order[s:e]
        for s, e in zip(starts.tolist(), ends.tolist())
    }
    offsets = (
        -span_y - 1, -span_y, -span_y + 1, -1, 0, 1, span_y - 1, span_y, span_y + 1
    )
    rows: List[Optional[np.ndarray]] = [None] * n
    for cell_key, members in cells.items():
        parts = [
            cells[cell_key + off] for off in offsets if cell_key + off in cells
        ]
        candidates = np.sort(np.concatenate(parts) if len(parts) > 1 else parts[0])
        dx = xs[candidates][None, :] - xs[members][:, None]
        dy = ys[candidates][None, :] - ys[members][:, None]
        keep = dx * dx + dy * dy <= radius_sq
        keep &= candidates[None, :] != members[:, None]
        for row, node in enumerate(members.tolist()):
            rows[node] = candidates[keep[row]]
    lengths = np.fromiter((row.shape[0] for row in rows), dtype=np.intp, count=n)  # type: ignore[union-attr]
    np.cumsum(lengths, out=indptr[1:])
    return indptr, np.concatenate(rows)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Planarization witness tests
# ----------------------------------------------------------------------


def gabriel_keep_mask(u: Point, coords: np.ndarray) -> np.ndarray:
    """Gabriel-graph keep mask over a node's neighbor coordinate array.

    ``coords`` is the ``(n, 2)`` array of neighbor locations; entry ``v`` of
    the result is True iff no *other* neighbor lies strictly inside the
    circle with diameter ``u -- coords[v]`` — exactly the witness test of
    :func:`repro.network.planar.gabriel_neighbors`.
    """
    n = coords.shape[0]
    _record("gabriel", n)
    ux = float(u[0])
    uy = float(u[1])
    wx = coords[:, 0]
    wy = coords[:, 1]
    center_x = (ux + wx) / 2.0
    center_y = (uy + wy) / 2.0
    dux = ux - wx
    duy = uy - wy
    radius_sq = (dux * dux + duy * duy) / 4.0
    ddx = wx[:, None] - center_x[None, :]
    ddy = wy[:, None] - center_y[None, :]
    witnessed = (ddx * ddx + ddy * ddy) < (radius_sq - _EPS)[None, :]
    np.fill_diagonal(witnessed, False)
    return ~witnessed.any(axis=0)


def rng_keep_mask(u: Point, coords: np.ndarray) -> np.ndarray:
    """Relative-Neighborhood-Graph keep mask over a neighbor coordinate array.

    Entry ``v`` is True iff no other neighbor ``w`` satisfies
    ``max(d(u,w), d(v,w)) < d(u,v)`` — the lune test of
    :func:`repro.network.planar.rng_neighbors`.
    """
    n = coords.shape[0]
    _record("rng", n)
    ux = float(u[0])
    uy = float(u[1])
    wx = coords[:, 0]
    wy = coords[:, 1]
    dux = ux - wx
    duy = uy - wy
    uv_sq = dux * dux + duy * duy
    limit = uv_sq - _EPS
    dvx = wx[None, :] - wx[:, None]
    dvy = wy[None, :] - wy[:, None]
    dvw_sq = dvx * dvx + dvy * dvy
    witnessed = (uv_sq[:, None] < limit[None, :]) & (dvw_sq < limit[None, :])
    np.fill_diagonal(witnessed, False)
    return ~witnessed.any(axis=0)


# ----------------------------------------------------------------------
# Next-hop selection (routing layer)
# ----------------------------------------------------------------------


def distances_to(locations: np.ndarray, target: Point) -> np.ndarray:
    """Euclidean distances from each row of ``locations`` to ``target``.

    Same ``sqrt(dx*dx + dy*dy)`` form (and operand order) as
    :func:`repro.geometry.point.distance`, so each entry is bit-equal to the
    scalar call — used by the rrSTR refinement's re-parent scan.
    """
    _record("refine_scan", locations.shape[0])
    dx = locations[:, 0] - target[0]
    dy = locations[:, 1] - target[1]
    return np.sqrt(dx * dx + dy * dy)


def pairwise_distances(coords: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` Euclidean distance matrix over ``coords``.

    Entry ``[i, j]`` uses ``sqrt((x_i-x_j)² + (y_i-y_j)²)`` with the same
    operand order as :func:`repro.geometry.point.distance`, so column ``j``
    is bit-equal to :func:`distances_to` ``(coords, coords[j])`` — one call
    replaces a per-vertex batch in the rrSTR re-parent scan.
    """
    n = coords.shape[0]
    _record("refine_scan", n * n)
    dx = coords[:, 0][:, None] - coords[:, 0][None, :]
    dy = coords[:, 1][:, None] - coords[:, 1][None, :]
    return np.sqrt(dx * dx + dy * dy)


def distances_sq_to(locations: np.ndarray, target: Point) -> np.ndarray:
    """Squared distances from each row of ``locations`` to ``target``."""
    _record("next_hop", locations.shape[0])
    deltas = locations - np.asarray([target[0], target[1]])
    return np.einsum("ij,ij->i", deltas, deltas)


def nearest_index(locations: np.ndarray, target: Point) -> int:
    """Index of the row of ``locations`` nearest to ``target`` (first wins)."""
    return int(np.argmin(distances_sq_to(locations, target)))


def group_distance_sums(
    locations: np.ndarray, group: Sequence[Point]
) -> np.ndarray:
    """Per-row sums of distances to every location in ``group``.

    The vectorized backbone of GMP/PBM next-hop selection; entry ``i`` is
    ``sum_z d(locations[i], z)``.
    """
    if locations.shape[0] == 0 or not group:
        return np.zeros(locations.shape[0], dtype=float)
    _record("next_hop", locations.shape[0] * len(group))
    targets = np.asarray([[p[0], p[1]] for p in group])
    diff = locations[:, None, :] - targets[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff)).sum(axis=1)
