"""A/B switch for the struct-of-arrays engine core.

``set_soa_enabled(False)`` (or the :func:`soa_disabled` context manager)
routes the simulation back onto the object-graph data structures:

* :class:`repro.network.graph.WirelessNetwork` builds its CSR neighbor
  adjacency from per-node :class:`~repro.network.graph.SpatialGrid` range
  queries instead of the batched :func:`repro.perf.kernels.unit_disk_rows`
  kernel, and ``are_neighbors`` falls back to per-node membership sets
  instead of a ``searchsorted`` probe of the CSR row.
* :class:`repro.simkit.simulator.Simulator` instantiates the binary-heap
  :class:`~repro.simkit.scheduler.EventScheduler` reference instead of the
  calendar-queue :class:`~repro.simkit.scheduler.CalendarScheduler`.

Either way the *results* are identical — the digest-equality tests run every
experiment path with the switch on and off and assert equal trace / delivery
digests, mirroring ``set_vectorized_enabled`` and ``set_caching_enabled``.
The switch lives in its own module (not :mod:`repro.perf.kernels`) because it
gates *data-structure backends*, not geometry kernels, and so has no entry in
``SCALAR_REFERENCES``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_ENABLED = True


def set_soa_enabled(enabled: bool) -> None:
    """Globally enable/disable the SoA backends (results are unaffected)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def soa_enabled() -> bool:
    return _ENABLED


@contextmanager
def soa_disabled() -> Iterator[None]:
    """Run a block on the object-graph backends (A/B digest testing)."""
    previous = _ENABLED
    set_soa_enabled(False)
    try:
        yield
    finally:
        set_soa_enabled(previous)
