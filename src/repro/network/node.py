"""The sensor-node model.

In the paper (Section 2) a node's location *is* its identity and network
address; packets are marked with the location of the intended next hop and
the matching node picks them up.  We additionally keep an integer id purely
as an efficient dictionary key — protocol code never derives information from
it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point


@dataclass(frozen=True)
class SensorNode:
    """One wireless sensor node.

    Attributes:
        node_id: Stable integer key (an implementation convenience; the
            protocol-level address is ``location``).
        location: The node's coordinates, known to the node itself via GPS
            or calibration per the paper's model.
    """

    node_id: int
    location: Point

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node id must be non-negative, got {self.node_id}")
