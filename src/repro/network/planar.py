"""Local planarization: Gabriel and Relative Neighborhood graphs.

Perimeter-mode forwarding (paper Section 4.1) applies the right-hand rule on
a planarized subgraph of the unit-disk graph; both the Gabriel graph [Gabriel
& Sokal 1969] and the RNG [Toussaint 1980] can be computed by each node from
nothing but its own neighbor table, which is why GPSR-family protocols use
them.  Both constructions keep the network connected whenever the unit-disk
graph is connected.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.geometry import Point, distance_sq, midpoint
from repro.perf.kernels import (
    MIN_BATCH,
    gabriel_keep_mask,
    rng_keep_mask,
    vectorized_enabled,
)


def _neighbor_coords(
    neighbor_ids: Sequence[int], location_of: Callable[[int], Point]
) -> np.ndarray:
    return np.array([location_of(v) for v in neighbor_ids], dtype=float)


def gabriel_neighbors(
    node_id: int,
    neighbor_ids: Sequence[int],
    location_of: Callable[[int], Point],
) -> Tuple[int, ...]:
    """Subset of ``neighbor_ids`` kept by the Gabriel-graph criterion.

    Edge ``uv`` survives iff no *witness* node lies strictly inside the
    circle having ``uv`` as diameter.  Witnesses are drawn from ``u``'s own
    neighbor table: any node inside that circle is within ``d(u, v) <= rr``
    of ``u``, hence necessarily a neighbor of ``u`` — so the local check is
    exact, not an approximation.
    """
    u = location_of(node_id)
    if vectorized_enabled() and len(neighbor_ids) >= MIN_BATCH:
        mask = gabriel_keep_mask(u, _neighbor_coords(neighbor_ids, location_of))
        return tuple(v for v, keep in zip(neighbor_ids, mask) if keep)
    kept: List[int] = []
    for v_id in neighbor_ids:
        v = location_of(v_id)
        center = midpoint(u, v)
        radius_sq = distance_sq(u, v) / 4.0
        witnessed = False
        for w_id in neighbor_ids:
            if w_id == v_id:
                continue
            if distance_sq(location_of(w_id), center) < radius_sq - 1e-12:
                witnessed = True
                break
        if not witnessed:
            kept.append(v_id)
    return tuple(kept)


def rng_neighbors(
    node_id: int,
    neighbor_ids: Sequence[int],
    location_of: Callable[[int], Point],
) -> Tuple[int, ...]:
    """Subset of ``neighbor_ids`` kept by the Relative-Neighborhood criterion.

    Edge ``uv`` survives iff no witness ``w`` satisfies
    ``max(d(u,w), d(v,w)) < d(u,v)`` (the "lune" test).  As with the Gabriel
    graph, every potential witness is within ``d(u,v)`` of ``u`` and thus in
    ``u``'s neighbor table, so the local computation is exact.
    """
    u = location_of(node_id)
    if vectorized_enabled() and len(neighbor_ids) >= MIN_BATCH:
        mask = rng_keep_mask(u, _neighbor_coords(neighbor_ids, location_of))
        return tuple(v for v, keep in zip(neighbor_ids, mask) if keep)
    kept: List[int] = []
    for v_id in neighbor_ids:
        v = location_of(v_id)
        uv_sq = distance_sq(u, v)
        witnessed = False
        for w_id in neighbor_ids:
            if w_id == v_id:
                continue
            w = location_of(w_id)
            if (
                distance_sq(u, w) < uv_sq - 1e-12
                and distance_sq(v, w) < uv_sq - 1e-12
            ):
                witnessed = True
                break
        if not witnessed:
            kept.append(v_id)
    return tuple(kept)
