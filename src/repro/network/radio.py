"""Radio parameters (paper Table 1) and the disc propagation model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RadioConfig:
    """Physical-layer parameters of every sensor node.

    Defaults reproduce Table 1 of the paper: 150 m omnidirectional radio
    range, 1 Mbps channel, 1.3 W transmission power, 0.9 W receiving power,
    128-byte messages.
    """

    radio_range_m: float = 150.0
    data_rate_bps: float = 1_000_000.0
    tx_power_w: float = 1.3
    rx_power_w: float = 0.9
    message_size_bytes: int = 128

    def __post_init__(self) -> None:
        if self.radio_range_m <= 0:
            raise ValueError(f"radio range must be positive, got {self.radio_range_m}")
        if self.data_rate_bps <= 0:
            raise ValueError(f"data rate must be positive, got {self.data_rate_bps}")
        if self.tx_power_w < 0 or self.rx_power_w < 0:
            raise ValueError("radio powers must be non-negative")
        if self.message_size_bytes <= 0:
            raise ValueError("message size must be positive")

    def transmission_time(self, size_bytes: int | None = None) -> float:
        """Airtime (seconds) of one packet of ``size_bytes`` (default Table-1 size)."""
        size = self.message_size_bytes if size_bytes is None else size_bytes
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        return (size * 8.0) / self.data_rate_bps
