"""Random-waypoint mobility.

The paper's own setting is static sensors, but its baselines (PBM, LGT)
come from the MANET world; a mobility model lets the examples and tests
demonstrate the other advantage of stateless protocols: after nodes move,
the very next packet routes correctly with zero reconfiguration, because
there is no distributed structure to repair.

The model is epoch-based: :meth:`RandomWaypointMobility.advance` moves every
node for ``dt`` seconds and returns the new positions, from which the caller
builds a fresh :class:`~repro.network.graph.WirelessNetwork` (neighbor
tables in real deployments are refreshed by periodic beacons; an epoch
models one beacon interval).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry import Point, distance


class RandomWaypointMobility:
    """Classic random-waypoint: pick a waypoint, travel, pause, repeat."""

    def __init__(
        self,
        initial_positions: Sequence[Point],
        width: float,
        height: float,
        rng: np.random.Generator,
        speed_range_mps: Tuple[float, float] = (0.5, 2.0),
        pause_time_s: float = 0.0,
    ) -> None:
        if not initial_positions:
            raise ValueError("mobility model needs at least one node")
        if width <= 0 or height <= 0:
            raise ValueError("field dimensions must be positive")
        low, high = speed_range_mps
        if low <= 0 or high < low:
            raise ValueError(f"invalid speed range {speed_range_mps}")
        if pause_time_s < 0:
            raise ValueError(f"pause time must be non-negative, got {pause_time_s}")
        for p in initial_positions:
            if not (0 <= p[0] <= width and 0 <= p[1] <= height):
                raise ValueError(f"initial position {p} outside the field")
        self.width = width
        self.height = height
        self.speed_range_mps = speed_range_mps
        self.pause_time_s = pause_time_s
        self._rng = rng
        self._positions: List[Point] = [Point(p[0], p[1]) for p in initial_positions]
        self._waypoints: List[Point] = [self._new_waypoint() for _ in initial_positions]
        self._speeds: List[float] = [self._new_speed() for _ in initial_positions]
        self._pause_left: List[float] = [0.0] * len(initial_positions)

    def _new_waypoint(self) -> Point:
        return Point(
            float(self._rng.uniform(0.0, self.width)),
            float(self._rng.uniform(0.0, self.height)),
        )

    def _new_speed(self) -> float:
        low, high = self.speed_range_mps
        return float(self._rng.uniform(low, high))

    @property
    def positions(self) -> List[Point]:
        """Current node positions (copy)."""
        return list(self._positions)

    def advance(self, dt: float) -> List[Point]:
        """Move every node for ``dt`` seconds; returns the new positions."""
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        for index in range(len(self._positions)):
            remaining = dt
            while remaining > 1e-12:
                if self._pause_left[index] > 0:
                    pause = min(self._pause_left[index], remaining)
                    self._pause_left[index] -= pause
                    remaining -= pause
                    continue
                position = self._positions[index]
                waypoint = self._waypoints[index]
                gap = distance(position, waypoint)
                speed = self._speeds[index]
                if gap <= speed * remaining:
                    # Reach the waypoint, pause, pick a new leg.
                    self._positions[index] = waypoint
                    remaining -= gap / speed if speed > 0 else remaining
                    self._pause_left[index] = self.pause_time_s
                    self._waypoints[index] = self._new_waypoint()
                    self._speeds[index] = self._new_speed()
                else:
                    step = speed * remaining / gap
                    self._positions[index] = Point(
                        position[0] + (waypoint[0] - position[0]) * step,
                        position[1] + (waypoint[1] - position[1]) * step,
                    )
                    remaining = 0.0
        return self.positions
