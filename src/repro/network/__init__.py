"""Wireless sensor network substrate.

Implements the paper's network model (Section 2): nodes with known 2-D
coordinates acting as their own addresses, a disc radio model with the
Table-1 parameters, unit-disk connectivity with O(1) spatial range queries,
local Gabriel/RNG planarization for perimeter routing, and the energy model
of Section 5.3 (transmit power for senders plus receive power for every
listener inside the sender's radio range).
"""

from repro.network.radio import RadioConfig
from repro.network.node import SensorNode
from repro.network.topology import (
    clustered_topology,
    grid_topology,
    topology_with_voids,
    uniform_random_topology,
)
from repro.network.graph import (
    CSRAdjacency,
    SpatialGrid,
    WirelessNetwork,
    build_network,
)
from repro.network.planar import gabriel_neighbors, rng_neighbors
from repro.network.energy import EnergyMeter, EnergyModel
from repro.network.mobility import RandomWaypointMobility

__all__ = [
    "RadioConfig",
    "SensorNode",
    "uniform_random_topology",
    "grid_topology",
    "clustered_topology",
    "topology_with_voids",
    "CSRAdjacency",
    "SpatialGrid",
    "WirelessNetwork",
    "build_network",
    "gabriel_neighbors",
    "rng_neighbors",
    "EnergyModel",
    "EnergyMeter",
    "RandomWaypointMobility",
]
