"""Energy accounting per the paper's Section 5.3.

Footnote 2 of the paper defines the reported energy as *"the transmission
power of senders and the receiving power of all listening nodes within the
transmission radio range of the senders"*.  With an omnidirectional antenna
and no sleep scheduling, one forwarded packet of airtime ``t`` therefore
costs::

    E = P_tx * t  +  |listeners| * P_rx * t

where ``listeners`` is every node within radio range of the sender.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.network.radio import RadioConfig


@dataclass(frozen=True)
class EnergyModel:
    """Pure cost function mapping a transmission to Joules."""

    radio: RadioConfig

    def transmission_energy(
        self, listener_count: int, size_bytes: int | None = None
    ) -> float:
        """Joules consumed by one transmission heard by ``listener_count`` nodes."""
        if listener_count < 0:
            raise ValueError(f"listener count must be non-negative, got {listener_count}")
        airtime = self.radio.transmission_time(size_bytes)
        return airtime * (self.radio.tx_power_w + listener_count * self.radio.rx_power_w)

    def tx_energy(self, size_bytes: int | None = None) -> float:
        """Sender-side Joules for one transmission."""
        return self.radio.transmission_time(size_bytes) * self.radio.tx_power_w

    def rx_energy(self, size_bytes: int | None = None) -> float:
        """Per-listener Joules for one transmission."""
        return self.radio.transmission_time(size_bytes) * self.radio.rx_power_w


@dataclass
class EnergyMeter:
    """Accumulates energy spent, broken down by node and by role."""

    model: EnergyModel
    tx_joules_by_node: Dict[int, float] = field(default_factory=dict)
    rx_joules_by_node: Dict[int, float] = field(default_factory=dict)
    transmissions: int = 0

    def record_transmission(
        self,
        sender_id: int,
        listener_ids,
        size_bytes: int | None = None,
        count_transmission: bool = True,
    ) -> float:
        """Charge one transmission; returns the Joules it cost in total.

        ``count_transmission=False`` charges the energy without bumping the
        :attr:`transmissions` tally — used by the contended link layer for
        control traffic (ACKs, beacons) so the reported transmission count
        keeps meaning "data-frame sends", comparable to the default model.
        """
        tx = self.model.tx_energy(size_bytes)
        rx = self.model.rx_energy(size_bytes)
        self.tx_joules_by_node[sender_id] = (
            self.tx_joules_by_node.get(sender_id, 0.0) + tx
        )
        total = tx
        for listener in listener_ids:
            self.rx_joules_by_node[listener] = (
                self.rx_joules_by_node.get(listener, 0.0) + rx
            )
            total += rx
        if count_transmission:
            self.transmissions += 1
        return total

    @property
    def total_tx_joules(self) -> float:
        return sum(self.tx_joules_by_node.values())

    @property
    def total_rx_joules(self) -> float:
        return sum(self.rx_joules_by_node.values())

    @property
    def total_joules(self) -> float:
        """All energy spent so far (senders plus listeners)."""
        return self.total_tx_joules + self.total_rx_joules
