"""Unit-disk connectivity with constant-time spatial range queries.

:class:`WirelessNetwork` is the authoritative global state of a simulated
deployment: node locations, the unit-disk neighbor relation induced by the
radio range, planarized (Gabriel / RNG) neighbor subsets for perimeter
routing, and conversions to :mod:`networkx` for the centralized SMT baseline
and connectivity checks.

Protocol implementations never touch this class directly — they see only the
per-node :class:`repro.routing.base.NodeView` carved out of it, which is how
the paper's locality constraint is enforced in code.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.geometry import Point, distance
from repro.network.node import SensorNode
from repro.network.planar import gabriel_neighbors, rng_neighbors
from repro.network.radio import RadioConfig


class SpatialGrid:
    """Uniform hash grid over the plane for radius queries.

    Each occupied cell precomputes the tight bounding box of the points it
    actually holds, so a query can discard cells whose contents cannot
    intersect the disk (the corner cells of the scan square usually cannot)
    and bulk-accept cells that lie entirely inside it — without touching a
    single point.  Both prunes are conservative: the returned indices, and
    their order, are identical to the plain per-point scan.
    """

    def __init__(self, points: Sequence[Point], cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell size must be positive, got {cell_size}")
        self._cell_size = cell_size
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        self._points = list(points)
        for idx, p in enumerate(self._points):
            self._cells.setdefault(self._cell_of(p), []).append(idx)
        # Tight per-cell bounds (min_x, min_y, max_x, max_y) over members.
        self._bounds: Dict[Tuple[int, int], Tuple[float, float, float, float]] = {}
        for cell, members in self._cells.items():
            xs = [self._points[i][0] for i in members]
            ys = [self._points[i][1] for i in members]
            self._bounds[cell] = (min(xs), min(ys), max(xs), max(ys))

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (int(math.floor(p[0] / self._cell_size)), int(math.floor(p[1] / self._cell_size)))

    def indices_within(self, center: Point, radius: float) -> List[int]:
        """Indices of points within ``radius`` of ``center`` (inclusive)."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        reach = int(math.ceil(radius / self._cell_size))
        cx, cy = self._cell_of(center)
        hits: List[int] = []
        radius_sq = radius * radius
        px, py = center[0], center[1]
        cells = self._cells
        bounds = self._bounds
        points = self._points
        for gx in range(cx - reach, cx + reach + 1):
            inner_x = gx != cx - reach and gx != cx + reach
            for gy in range(cy - reach, cy + reach + 1):
                members = cells.get((gx, gy))
                if not members:
                    continue
                min_x, min_y, max_x, max_y = bounds[(gx, gy)]
                if not (inner_x and gy != cy - reach and gy != cy + reach):
                    # A cell on the outer ring of the scan square may miss
                    # the disk entirely: if even the nearest point of the
                    # cell's bounding box is outside, no member is inside.
                    # (Interior cells always intersect — skip the test.)
                    near_dx = (
                        min_x - px
                        if px < min_x
                        else (px - max_x if px > max_x else 0.0)
                    )
                    near_dy = (
                        min_y - py
                        if py < min_y
                        else (py - max_y if py > max_y else 0.0)
                    )
                    if near_dx * near_dx + near_dy * near_dy > radius_sq:
                        continue
                # Farthest corner of the bounding box inside the disk:
                # every member is inside, skip the per-point checks.
                far_dx = px - min_x if px - min_x > max_x - px else max_x - px
                far_dy = py - min_y if py - min_y > max_y - py else max_y - py
                if far_dx * far_dx + far_dy * far_dy <= radius_sq:
                    hits.extend(members)
                    continue
                for idx in members:
                    p = points[idx]
                    dx = p[0] - px
                    dy = p[1] - py
                    if dx * dx + dy * dy <= radius_sq:
                        hits.append(idx)
        return hits


class WirelessNetwork:
    """A deployed sensor network: nodes, links, and planar overlays."""

    def __init__(self, points: Sequence[Point], radio: RadioConfig) -> None:
        if not points:
            raise ValueError("a network needs at least one node")
        self.radio = radio
        self.nodes: List[SensorNode] = [
            SensorNode(node_id=i, location=Point(float(p[0]), float(p[1])))
            for i, p in enumerate(points)
        ]
        self.locations = np.array([[p[0], p[1]] for p in points], dtype=float)
        self._grid = SpatialGrid([n.location for n in self.nodes], radio.radio_range_m)
        self._neighbors: List[Tuple[int, ...]] = self._build_neighbor_lists()
        self._gabriel_cache: Dict[int, Tuple[int, ...]] = {}
        self._rng_cache: Dict[int, Tuple[int, ...]] = {}
        self._neighbor_arrays: List[Optional[np.ndarray]] = [None] * len(self.nodes)
        self._nx_graph: Optional[nx.Graph] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_neighbor_lists(self) -> List[Tuple[int, ...]]:
        neighbor_lists: List[Tuple[int, ...]] = []
        rr = self.radio.radio_range_m
        for node in self.nodes:
            in_range = self._grid.indices_within(node.location, rr)
            neighbor_lists.append(
                tuple(sorted(i for i in in_range if i != node.node_id))
            )
        return neighbor_lists

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def location_of(self, node_id: int) -> Point:
        """Coordinates of node ``node_id``."""
        return self.nodes[node_id].location

    def neighbors_of(self, node_id: int) -> Tuple[int, ...]:
        """Ids of all nodes within radio range of ``node_id`` (excluding itself)."""
        return self._neighbors[node_id]

    def nodes_within(self, center: Point, radius: float) -> List[int]:
        """Ids of nodes within ``radius`` of an arbitrary point."""
        return self._grid.indices_within(center, radius)

    def listeners_of(self, sender_id: int) -> Tuple[int, ...]:
        """Nodes that overhear a transmission by ``sender_id``.

        With an omnidirectional antenna every node inside the sender's radio
        range receives the signal and pays receive power — this is the set
        the energy model of Section 5.3 charges.
        """
        return self._neighbors[sender_id]

    def are_neighbors(self, a: int, b: int) -> bool:
        """Whether nodes ``a`` and ``b`` share a direct radio link."""
        return b in self._neighbors[a]

    def neighbor_location_array(self, node_id: int) -> np.ndarray:
        """Locations of ``node_id``'s neighbors as a read-only ``(m, 2)`` array.

        Aligned with :meth:`neighbors_of`.  Built once per node and cached —
        every next-hop scan used to re-gather the same rows from
        :attr:`locations` on each forwarding decision, which dominated the
        per-hop cost for the vectorized protocols.
        """
        cached = self._neighbor_arrays[node_id]
        if cached is None:
            ids = self._neighbors[node_id]
            if ids:
                cached = self.locations[list(ids)]
            else:
                cached = np.empty((0, 2), dtype=float)
            cached.setflags(write=False)
            self._neighbor_arrays[node_id] = cached
        return cached

    def average_degree(self) -> float:
        """Mean neighbor count across nodes — the usual density proxy."""
        if not self.nodes:
            return 0.0
        return sum(len(n) for n in self._neighbors) / len(self.nodes)

    def closest_node_to(self, target: Point) -> int:
        """Id of the node nearest to an arbitrary location."""
        deltas = self.locations - np.asarray([target[0], target[1]])
        return int(np.argmin(np.einsum("ij,ij->i", deltas, deltas)))

    # ------------------------------------------------------------------
    # Planar overlays (local computations, cached)
    # ------------------------------------------------------------------

    def gabriel_neighbors_of(self, node_id: int) -> Tuple[int, ...]:
        """Neighbors kept by the Gabriel-graph planarization at ``node_id``.

        Computed from purely local information (the node's own neighbor
        table), exactly as GPSR/GMP planarize in the field.
        """
        if node_id not in self._gabriel_cache:
            self._gabriel_cache[node_id] = gabriel_neighbors(
                node_id,
                self._neighbors[node_id],
                lambda i: self.nodes[i].location,
            )
        return self._gabriel_cache[node_id]

    def rng_neighbors_of(self, node_id: int) -> Tuple[int, ...]:
        """Neighbors kept by the Relative-Neighborhood-Graph planarization."""
        if node_id not in self._rng_cache:
            self._rng_cache[node_id] = rng_neighbors(
                node_id,
                self._neighbors[node_id],
                lambda i: self.nodes[i].location,
            )
        return self._rng_cache[node_id]

    # ------------------------------------------------------------------
    # Global views (for SMT and diagnostics only)
    # ------------------------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """The unit-disk graph with Euclidean edge weights (cached)."""
        if self._nx_graph is None:
            graph = nx.Graph()
            for node in self.nodes:
                graph.add_node(node.node_id, location=node.location)
            for node in self.nodes:
                for other in self._neighbors[node.node_id]:
                    if other > node.node_id:
                        graph.add_edge(
                            node.node_id,
                            other,
                            weight=distance(node.location, self.nodes[other].location),
                        )
            self._nx_graph = graph
        return self._nx_graph

    def is_connected(self) -> bool:
        """Whether the unit-disk graph is a single component."""
        return nx.is_connected(self.to_networkx())


def build_network(
    points: Iterable[Point],
    radio: RadioConfig | None = None,
) -> WirelessNetwork:
    """Convenience constructor with Table-1 radio defaults."""
    return WirelessNetwork(list(points), radio or RadioConfig())
