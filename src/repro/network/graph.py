"""Unit-disk connectivity with constant-time spatial range queries.

:class:`WirelessNetwork` is the authoritative global state of a simulated
deployment: node locations, the unit-disk neighbor relation induced by the
radio range, planarized (Gabriel / RNG) neighbor subsets for perimeter
routing, and conversions to :mod:`networkx` for the centralized SMT baseline
and connectivity checks.

Protocol implementations never touch this class directly — they see only the
per-node :class:`repro.routing.base.NodeView` carved out of it, which is how
the paper's locality constraint is enforced in code.

Internally the network is struct-of-arrays: node coordinates, liveness and
residual energy are flat NumPy arrays, and all three neighbor relations
(unit-disk, Gabriel, RNG) share one CSR representation
(:class:`CSRAdjacency`) whose rows are O(1) array slices.  The public API is
unchanged — ``neighbors_of`` still hands out tuples of plain ints — and
``repro.perf.soa.set_soa_enabled(False)`` routes construction back through
the per-node object-graph path for A/B digest testing; rows are identical
either way.
"""

from __future__ import annotations

import bisect
import math
from typing import (
    Dict,
    Iterable,
    List,
    MutableSequence,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
    overload,
)

import networkx as nx
import numpy as np

from repro.geometry import Point, distance
from repro.network.node import SensorNode
from repro.network.planar import gabriel_neighbors, rng_neighbors
from repro.network.radio import RadioConfig
from repro.perf.kernels import disk_mask, unit_disk_rows, vectorized_enabled
from repro.perf.soa import soa_enabled


#: Minimum candidate count for a query to take the batched disk test.
#: Measured break-even on the reference machine is ~50-90 candidates
#: (gathering ~9 per-cell arrays costs more than the kernel saves below
#: that), so radio-range neighbor queries at the paper's 400-1000
#: nodes/km^2 densities stay on the scalar loop while wide-radius and
#: dense-deployment queries batch.  Results are identical either way.
_QUERY_BATCH_MIN = 96


class SpatialGrid:
    """Uniform hash grid over the plane for radius queries.

    Each occupied cell precomputes the tight bounding box of the points it
    actually holds, so a query can discard cells whose contents cannot
    intersect the disk (the corner cells of the scan square usually cannot)
    and bulk-accept cells that lie entirely inside it — without touching a
    single point.  Both prunes are conservative: the returned indices, and
    their order, are identical to the plain per-point scan.
    """

    def __init__(self, points: Sequence[Point], cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell size must be positive, got {cell_size}")
        self._cell_size = cell_size
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        # A list of Points on built grids; the shared (n, 2) coordinate
        # array on grids attached over a shared-memory plane (same values,
        # same indexing — converted back to a list on first relocation).
        self._points: Union[List[Point], np.ndarray] = list(points)
        for idx, p in enumerate(self._points):
            self._cells.setdefault(self._cell_of(p), []).append(idx)
        # Tight per-cell bounds (min_x, min_y, max_x, max_y) over members,
        # plus per-cell member coordinate arrays for the batched disk test
        # (index array, xs, ys — aligned with the member list).
        self._bounds: Dict[Tuple[int, int], Tuple[float, float, float, float]] = {}
        self._member_arrays: Dict[
            Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        for cell in self._cells:
            self._refresh_cell(cell)

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (int(math.floor(p[0] / self._cell_size)), int(math.floor(p[1] / self._cell_size)))

    def _refresh_cell(self, cell: Tuple[int, int]) -> None:
        """Recompute one cell's bounds and member arrays from its member list."""
        members = self._cells.get(cell)
        if not members:
            self._cells.pop(cell, None)
            self._bounds.pop(cell, None)
            self._member_arrays.pop(cell, None)
            return
        xs = [self._points[i][0] for i in members]
        ys = [self._points[i][1] for i in members]
        self._bounds[cell] = (min(xs), min(ys), max(xs), max(ys))
        self._member_arrays[cell] = (
            np.array(members, dtype=np.intp),
            np.array(xs, dtype=float),
            np.array(ys, dtype=float),
        )

    def remove_point(self, idx: int) -> None:
        """Drop point ``idx`` from the grid (its slot stays allocated).

        Subsequent queries never return ``idx``; the cell's bounds and
        member arrays are recomputed so both prunes stay tight.
        """
        cell = self._cell_of(self._points[idx])
        members = self._cells.get(cell)
        if members is None or idx not in members:
            raise KeyError(f"point {idx} is not in the grid")
        members.remove(idx)
        self._refresh_cell(cell)

    def move_point(self, idx: int, new_point: Point) -> None:
        """Relocate point ``idx``, keeping per-cell member order by index.

        Members are kept sorted by index within each cell — the order a
        fresh build produces — so queries against a mutated grid return
        hits in exactly the order a rebuilt grid would.
        """
        self._ensure_private_points()
        old_cell = self._cell_of(self._points[idx])
        members = self._cells.get(old_cell)
        if members is None or idx not in members:
            raise KeyError(f"point {idx} is not in the grid")
        self._points[idx] = new_point
        new_cell = self._cell_of(new_point)
        if new_cell == old_cell:
            self._refresh_cell(old_cell)
            return
        members.remove(idx)
        self._refresh_cell(old_cell)
        target = self._cells.setdefault(new_cell, [])
        bisect.insort(target, idx)
        self._refresh_cell(new_cell)

    # ------------------------------------------------------------------
    # Shared-memory plane support (see repro.perf.shm)
    # ------------------------------------------------------------------

    def packed_arrays(self) -> Dict[str, np.ndarray]:
        """The occupied cells flattened into plane-mappable flat arrays.

        Cells are emitted in sorted key order: ``grid_cells[i]`` is the
        key of the cell whose members occupy
        ``grid_members[grid_indptr[i]:grid_indptr[i+1]]`` (the coordinate
        slices of ``grid_xs``/``grid_ys`` are aligned with it), with the
        tight per-cell bounds in ``grid_bounds[i]``.
        """
        cells = sorted(self._cells)
        parts = [self._member_arrays[cell] for cell in cells]
        counts = np.fromiter(
            (part[0].shape[0] for part in parts), dtype=np.intp, count=len(parts)
        )
        indptr = np.zeros(len(parts) + 1, dtype=np.intp)
        np.cumsum(counts, out=indptr[1:])
        return {
            "grid_cells": np.array(cells, dtype=np.int64),
            "grid_indptr": indptr,
            "grid_members": np.concatenate([part[0] for part in parts]),
            "grid_xs": np.concatenate([part[1] for part in parts]),
            "grid_ys": np.concatenate([part[2] for part in parts]),
            "grid_bounds": np.array(
                [self._bounds[cell] for cell in cells], dtype=float
            ),
        }

    @classmethod
    def from_packed(
        cls,
        points: np.ndarray,
        cell_size: float,
        arrays: Dict[str, np.ndarray],
    ) -> "SpatialGrid":
        """Rebuild a grid over mapped arrays — the attach-side twin of ``__init__``.

        Member *arrays* are zero-copy slices of the mapped buffers; member
        *lists* (the bulk-accept path and the mutation bookkeeping) are
        materialized as plain ints — exactly what a fresh build holds, so
        query results, and their order, are indistinguishable from a
        rebuilt grid's.
        """
        grid = cls.__new__(cls)
        grid._cell_size = float(cell_size)
        grid._points = points
        grid._cells = {}
        grid._bounds = {}
        grid._member_arrays = {}
        starts = arrays["grid_indptr"].tolist()
        bounds = arrays["grid_bounds"]
        members = arrays["grid_members"]
        xs = arrays["grid_xs"]
        ys = arrays["grid_ys"]
        for i, key_row in enumerate(arrays["grid_cells"].tolist()):
            cell = (int(key_row[0]), int(key_row[1]))
            lo, hi = starts[i], starts[i + 1]
            grid._cells[cell] = members[lo:hi].tolist()
            row = bounds[i]
            grid._bounds[cell] = (
                float(row[0]),
                float(row[1]),
                float(row[2]),
                float(row[3]),
            )
            grid._member_arrays[cell] = (members[lo:hi], xs[lo:hi], ys[lo:hi])
        return grid

    def adopt_member_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Swap per-cell member/coordinate arrays for shared views.

        Called on the *publishing* side right after the plane copies this
        grid's packed arrays into a segment: values are bit-identical,
        only the backing storage changes, so no derived state needs
        recomputing and the private copies are freed.
        """
        starts = arrays["grid_indptr"].tolist()
        members = arrays["grid_members"]
        xs = arrays["grid_xs"]
        ys = arrays["grid_ys"]
        for i, key_row in enumerate(arrays["grid_cells"].tolist()):
            cell = (int(key_row[0]), int(key_row[1]))
            lo, hi = starts[i], starts[i + 1]
            self._member_arrays[cell] = (members[lo:hi], xs[lo:hi], ys[lo:hi])

    def _ensure_private_points(self) -> None:
        """Copy-on-write for the point table of an attached (shared) grid.

        The attach path leaves ``_points`` as the mapped coordinate array;
        the first relocation converts it back to the private list of
        Points a fresh build holds.  Values are unchanged, so every
        derived structure stays exact — nothing to invalidate (R012
        exempts the configured copy-on-write hooks for exactly this
        reason); reprolint R017 pins that relocations reach this before
        writing.
        """
        if isinstance(self._points, np.ndarray):
            self._points = [Point(float(p[0]), float(p[1])) for p in self._points]

    def indices_within(self, center: Point, radius: float) -> List[int]:
        """Indices of points within ``radius`` of ``center`` (inclusive)."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        reach = int(math.ceil(radius / self._cell_size))
        cx, cy = self._cell_of(center)
        hits: List[int] = []
        radius_sq = radius * radius
        px, py = center[0], center[1]
        cells = self._cells
        bounds = self._bounds
        points = self._points
        # Cells surviving the bounds prunes, in scan order.  ``True`` chunks
        # are bulk-accepted whole; ``False`` chunks need per-point disk
        # tests, which are deferred so the whole query runs ONE batched
        # kernel call over the concatenated candidates (per-cell batches at
        # operating density are ~20 points — below numpy dispatch
        # break-even, so batching per cell is slower than the scalar loop).
        chunks: List[Tuple[bool, Tuple[int, int]]] = []
        tested_total = 0
        for gx in range(cx - reach, cx + reach + 1):
            inner_x = gx != cx - reach and gx != cx + reach
            for gy in range(cy - reach, cy + reach + 1):
                members = cells.get((gx, gy))
                if not members:
                    continue
                min_x, min_y, max_x, max_y = bounds[(gx, gy)]
                if not (inner_x and gy != cy - reach and gy != cy + reach):
                    # A cell on the outer ring of the scan square may miss
                    # the disk entirely: if even the nearest point of the
                    # cell's bounding box is outside, no member is inside.
                    # (Interior cells always intersect — skip the test.)
                    near_dx = (
                        min_x - px
                        if px < min_x
                        else (px - max_x if px > max_x else 0.0)
                    )
                    near_dy = (
                        min_y - py
                        if py < min_y
                        else (py - max_y if py > max_y else 0.0)
                    )
                    if near_dx * near_dx + near_dy * near_dy > radius_sq:
                        continue
                # Farthest corner of the bounding box inside the disk:
                # every member is inside, skip the per-point checks.
                far_dx = px - min_x if px - min_x > max_x - px else max_x - px
                far_dy = py - min_y if py - min_y > max_y - py else max_y - py
                if far_dx * far_dx + far_dy * far_dy <= radius_sq:
                    chunks.append((True, (gx, gy)))
                    continue
                chunks.append((False, (gx, gy)))
                tested_total += len(members)
        if vectorized_enabled() and tested_total >= _QUERY_BATCH_MIN:
            member_arrays = self._member_arrays
            tested = [cell for accept, cell in chunks if not accept]
            if len(tested) == 1:
                idx_all, xs_all, ys_all = member_arrays[tested[0]]
                offsets = [0]
            else:
                parts = [member_arrays[cell] for cell in tested]
                offsets = [0]
                for p in parts[:-1]:
                    offsets.append(offsets[-1] + len(p[0]))
                idx_all = np.concatenate([p[0] for p in parts])
                xs_all = np.concatenate([p[1] for p in parts])
                ys_all = np.concatenate([p[2] for p in parts])
            mask = disk_mask(xs_all, ys_all, px, py, radius_sq)
            accepted = idx_all[mask].tolist()
            counts = np.add.reduceat(mask.astype(np.intp), offsets).tolist()
            pos = 0
            tested_i = 0
            for accept, cell in chunks:
                if accept:
                    hits.extend(cells[cell])
                    continue
                taken = counts[tested_i]
                hits.extend(accepted[pos : pos + taken])
                pos += taken
                tested_i += 1
            return hits
        for accept, cell in chunks:
            members = cells[cell]
            if accept:
                hits.extend(members)
                continue
            for idx in members:
                p = points[idx]
                dx = p[0] - px
                dy = p[1] - py
                if dx * dx + dy * dy <= radius_sq:
                    hits.append(idx)
        return hits


class CSRAdjacency:
    """Compressed-sparse-row adjacency with copy-on-write row overrides.

    ``indices[indptr[i]:indptr[i+1]]`` is row ``i`` — the ascending ids
    adjacent to node ``i``.  :meth:`row` is an O(1) read-only array slice;
    :meth:`row_tuple` memoizes the plain-int tuple the public API hands out;
    :meth:`contains` binary-searches the sorted row.  Mutations (node
    failures, mobility) replace whole rows via :meth:`set_row` in a sparse
    override dict, leaving the packed base arrays untouched — churn touches
    a handful of nodes out of tens of thousands, so repacking would be
    wasted work.  The unit-disk relation and both planar overlays share
    this one representation.
    """

    __slots__ = ("indptr", "indices", "_overrides", "_tuples")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr = np.asarray(indptr, dtype=np.intp)
        self.indices = np.asarray(indices, dtype=np.intp)
        self.indices.setflags(write=False)
        self._overrides: Dict[int, np.ndarray] = {}
        self._tuples: List[Optional[Tuple[int, ...]]] = [None] * (
            len(self.indptr) - 1
        )

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[int]]) -> "CSRAdjacency":
        """Pack per-node ascending id sequences into ``(indptr, indices)``."""
        indptr = np.zeros(len(rows) + 1, dtype=np.intp)
        np.cumsum(
            np.fromiter((len(row) for row in rows), dtype=np.intp, count=len(rows)),
            out=indptr[1:],
        )
        indices = np.empty(int(indptr[-1]), dtype=np.intp)
        position = 0
        for row in rows:
            indices[position : position + len(row)] = row
            position += len(row)
        return cls(indptr, indices)

    def __len__(self) -> int:
        return len(self._tuples)

    def degree(self, node_id: int) -> int:
        override = self._overrides.get(node_id)
        if override is not None:
            return int(override.shape[0])
        return int(self.indptr[node_id + 1] - self.indptr[node_id])

    def row(self, node_id: int) -> np.ndarray:
        """Row ``node_id`` as a read-only ascending id array (O(1) slice)."""
        override = self._overrides.get(node_id)
        if override is not None:
            return override
        return self.indices[self.indptr[node_id] : self.indptr[node_id + 1]]

    def row_tuple(self, node_id: int) -> Tuple[int, ...]:
        """Row ``node_id`` as a tuple of plain ints (memoized).

        The tuple form is what the layers above consume: hashable (the
        beacon service keys its planarization memo on it), holding plain
        ``int`` (energy-meter dict keys, trace digests), and cheap to
        iterate per hop.
        """
        cached = self._tuples[node_id]
        if cached is None:
            cached = tuple(self.row(node_id).tolist())
            self._tuples[node_id] = cached
        return cached

    def contains(self, node_id: int, other: int) -> bool:
        """Binary-search membership test on the sorted row."""
        row = self.row(node_id)
        position = int(np.searchsorted(row, other))
        return position < row.shape[0] and int(row[position]) == other

    def set_row(self, node_id: int, ids: Sequence[int]) -> None:
        """Replace row ``node_id`` (ascending ids), keeping the base packed."""
        override = np.array(ids, dtype=np.intp)
        override.setflags(write=False)
        self._overrides[node_id] = override
        self._tuples[node_id] = None


class _SharedNodeList(MutableSequence[SensorNode]):
    """Lazily-materialized node objects over a shared coordinate array.

    An attached network maps its coordinates zero-copy; building all n
    ``SensorNode`` objects eagerly would cost more than the whole attach.
    Slots materialize on first access and are then pinned, so callers
    that rely on object identity (planarization lambdas, ``to_networkx``)
    see stable nodes.  The only mutation the network performs is
    ``move_node``'s single-slot overwrite; structural edits are refused —
    a deployment's node count is fixed for its lifetime.
    """

    __slots__ = ("_locations", "_nodes")

    def __init__(self, locations: np.ndarray) -> None:
        self._locations = locations
        self._nodes: List[Optional[SensorNode]] = [None] * int(locations.shape[0])

    def __len__(self) -> int:
        return len(self._nodes)

    @overload
    def __getitem__(self, index: int) -> SensorNode: ...

    @overload
    def __getitem__(self, index: slice) -> MutableSequence[SensorNode]: ...

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[SensorNode, MutableSequence[SensorNode]]:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self._nodes)))]
        if index < 0:
            index += len(self._nodes)
        if not 0 <= index < len(self._nodes):
            raise IndexError("node index out of range")
        node = self._nodes[index]
        if node is None:
            row = self._locations[index]
            node = SensorNode(
                node_id=index, location=Point(float(row[0]), float(row[1]))
            )
            self._nodes[index] = node
        return node

    @overload
    def __setitem__(self, index: int, value: SensorNode) -> None: ...

    @overload
    def __setitem__(self, index: slice, value: Iterable[SensorNode]) -> None: ...

    def __setitem__(
        self,
        index: Union[int, slice],
        value: Union[SensorNode, Iterable[SensorNode]],
    ) -> None:
        if isinstance(index, slice) or not isinstance(value, SensorNode):
            raise TypeError("only single-slot node assignment is supported")
        self._nodes[index] = value

    def __delitem__(self, index: Union[int, slice]) -> None:
        raise TypeError("a deployment's node count is fixed")

    def insert(self, index: int, value: SensorNode) -> None:
        raise TypeError("a deployment's node count is fixed")


class WirelessNetwork:
    """A deployed sensor network: nodes, links, and planar overlays."""

    #: Object view of the nodes — a plain list on built networks, a
    #: lazily-materializing :class:`_SharedNodeList` on attached ones
    #: (identical indexing and iteration behavior).
    nodes: MutableSequence[SensorNode]

    def __init__(
        self,
        points: Sequence[Point],
        radio: RadioConfig,
        initial_energy_j: float = math.inf,
    ) -> None:
        if not points:
            raise ValueError("a network needs at least one node")
        self.radio = radio
        self.nodes = [
            SensorNode(node_id=i, location=Point(float(p[0]), float(p[1])))
            for i, p in enumerate(points)
        ]
        count = len(self.nodes)
        # Struct-of-arrays node state: coordinates, liveness and residual
        # energy are flat arrays so whole-network passes (adjacency builds,
        # nearest-node scans, churn bookkeeping) touch no Python objects.
        # ``nodes`` keeps the object view for the per-node layers above.
        self.locations = np.array([[p[0], p[1]] for p in points], dtype=float)
        self.alive = np.ones(count, dtype=bool)
        self.residual_energy_j = np.full(count, float(initial_energy_j), dtype=float)
        self._grid = SpatialGrid([n.location for n in self.nodes], radio.radio_range_m)
        self._soa = soa_enabled()
        if self._soa and vectorized_enabled():
            indptr, indices = unit_disk_rows(
                self.locations[:, 0], self.locations[:, 1], radio.radio_range_m
            )
            self._adjacency = CSRAdjacency(indptr, indices)
        else:
            self._adjacency = CSRAdjacency.from_rows(self._build_neighbor_lists())
        self._neighbor_sets: List[Optional[frozenset]] = [None] * count
        self._gabriel_cache: Dict[int, Tuple[int, ...]] = {}
        self._rng_cache: Dict[int, Tuple[int, ...]] = {}
        self._gabriel_csr: Optional[CSRAdjacency] = None
        self._rng_csr: Optional[CSRAdjacency] = None
        self._neighbor_arrays: List[Optional[np.ndarray]] = [None] * count
        self._nx_graph: Optional[nx.Graph] = None
        self._failed: Set[int] = set()
        # True while the flat node-state arrays are views of a shared-memory
        # segment (attached worker view, or the parent after publishing);
        # the first mutation copies them private (_ensure_private_node_state).
        self._shared_state = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_neighbor_lists(self) -> List[Tuple[int, ...]]:
        """Per-node unit-disk rows via grid range queries (one per node).

        The object-graph construction path, and the scalar reference for
        the batched :func:`repro.perf.kernels.unit_disk_rows` kernel: both
        apply the same inclusive ``dx*dx + dy*dy <= r*r`` test, so the CSR
        rows are identical whichever path built them.
        """
        neighbor_lists: List[Tuple[int, ...]] = []
        rr = self.radio.radio_range_m
        for node in self.nodes:
            in_range = self._grid.indices_within(node.location, rr)
            neighbor_lists.append(
                tuple(sorted(i for i in in_range if i != node.node_id))
            )
        return neighbor_lists

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def location_of(self, node_id: int) -> Point:
        """Coordinates of node ``node_id``."""
        return self.nodes[node_id].location

    def neighbors_of(self, node_id: int) -> Tuple[int, ...]:
        """Ids of all nodes within radio range of ``node_id`` (excluding itself)."""
        return self._adjacency.row_tuple(node_id)

    def neighbor_ids_array(self, node_id: int) -> np.ndarray:
        """Neighbor ids as a read-only ascending array (O(1) CSR row slice)."""
        return self._adjacency.row(node_id)

    @property
    def adjacency(self) -> CSRAdjacency:
        """The unit-disk CSR adjacency; row ``i`` == ``neighbors_of(i)``."""
        return self._adjacency

    def nodes_within(self, center: Point, radius: float) -> List[int]:
        """Ids of nodes within ``radius`` of an arbitrary point."""
        return self._grid.indices_within(center, radius)

    def listeners_of(self, sender_id: int) -> Tuple[int, ...]:
        """Nodes that overhear a transmission by ``sender_id``.

        With an omnidirectional antenna every node inside the sender's radio
        range receives the signal and pays receive power — this is the set
        the energy model of Section 5.3 charges.
        """
        return self._adjacency.row_tuple(sender_id)

    def are_neighbors(self, a: int, b: int) -> bool:
        """Whether nodes ``a`` and ``b`` share a direct radio link.

        SoA path: binary search of the sorted CSR row (O(log degree)).
        Legacy path: memoized per-node frozenset — either way the old
        O(degree) tuple scan is gone from the validation hot loop.
        """
        if self._soa:
            return self._adjacency.contains(a, b)
        cached = self._neighbor_sets[a]
        if cached is None:
            cached = frozenset(self._adjacency.row_tuple(a))
            self._neighbor_sets[a] = cached
        return b in cached

    def neighbor_location_array(self, node_id: int) -> np.ndarray:
        """Locations of ``node_id``'s neighbors as a read-only ``(m, 2)`` array.

        Aligned with :meth:`neighbors_of`.  Built once per node and cached —
        every next-hop scan used to re-gather the same rows from
        :attr:`locations` on each forwarding decision, which dominated the
        per-hop cost for the vectorized protocols.
        """
        cached = self._neighbor_arrays[node_id]
        if cached is None:
            cached = self.locations[self._adjacency.row(node_id)]
            cached.setflags(write=False)
            self._neighbor_arrays[node_id] = cached
        return cached

    def average_degree(self) -> float:
        """Mean neighbor count across nodes — the usual density proxy."""
        if not self.nodes:
            return 0.0
        adjacency = self._adjacency
        return sum(adjacency.degree(i) for i in range(len(self.nodes))) / len(
            self.nodes
        )

    def closest_node_to(self, target: Point) -> int:
        """Id of the node nearest to an arbitrary location (failed excluded)."""
        deltas = self.locations - np.asarray([target[0], target[1]])
        dist_sq = np.einsum("ij,ij->i", deltas, deltas)
        dist_sq[~self.alive] = np.inf
        return int(np.argmin(dist_sq))

    # ------------------------------------------------------------------
    # Residual energy (deployment-lifetime ledger)
    # ------------------------------------------------------------------

    def residual_energy_of(self, node_id: int) -> float:
        """Remaining battery charge of ``node_id`` in joules."""
        return float(self.residual_energy_j[node_id])

    def drain_energy(self, node_id: int, joules: float) -> float:
        """Subtract ``joules`` from a node's battery; returns the remainder.

        Clamped at zero.  Deciding when a drained node *fails* is
        deliberately left to the churn layers (via :meth:`fail_node`) so
        energy accounting stays side-effect-free; per-task metering stays in
        :class:`repro.network.energy.EnergyMeter`, while this array is the
        whole-deployment ledger the lifetime experiments read.
        """
        if joules < 0.0:
            raise ValueError(f"cannot drain a negative amount ({joules})")
        self._ensure_private_node_state()
        remaining = self.residual_energy_j[node_id] - joules
        if remaining < 0.0:
            remaining = 0.0
        self.residual_energy_j[node_id] = remaining
        return float(remaining)

    # ------------------------------------------------------------------
    # Shared-memory plane support (see repro.perf.shm)
    # ------------------------------------------------------------------

    def shared_state_arrays(self) -> Optional[Dict[str, np.ndarray]]:
        """The flat arrays a shared-memory plane serializes, or ``None``.

        ``None`` marks the network non-publishable: built through the
        legacy object-graph path (no SoA guarantees), or already mutated
        (failures / CSR row overrides) — a mutated deployment is
        worker-local by definition and must never be shared.  Planar
        overlays are included only when already materialized; attachers
        rebuild them lazily otherwise, bit-identically.
        """
        if not self._soa or self._failed or self._adjacency._overrides:
            return None
        arrays: Dict[str, np.ndarray] = {
            "locations": self.locations,
            "alive": self.alive,
            "residual_energy": self.residual_energy_j,
            "adjacency_indptr": self._adjacency.indptr,
            "adjacency_indices": self._adjacency.indices,
        }
        arrays.update(self._grid.packed_arrays())
        if self._gabriel_csr is not None and not self._gabriel_csr._overrides:
            arrays["gabriel_indptr"] = self._gabriel_csr.indptr
            arrays["gabriel_indices"] = self._gabriel_csr.indices
        if self._rng_csr is not None and not self._rng_csr._overrides:
            arrays["rng_indptr"] = self._rng_csr.indptr
            arrays["rng_indices"] = self._rng_csr.indices
        return arrays

    def adopt_shared_arrays(
        self, arrays: Dict[str, np.ndarray]
    ) -> None:
        """Re-point this network's flat state at published shared views.

        Called by ``repro.perf.shm.SharedNetworkPlane.publish`` right
        after copying this network's arrays into a segment: the parent
        drops its private copies and reads the same mapped bytes workers
        attach, so each deployment's node state is resident once per
        machine rather than once per process.  Every value is
        bit-identical to the array it replaces, so all derived caches
        remain exact — there is nothing to invalidate (R012 exempts the
        configured copy-on-write hooks); the first subsequent mutation
        goes through the same copy-on-write path as an attached network's.
        """
        self.locations = arrays["locations"]
        self.alive = arrays["alive"]
        self.residual_energy_j = arrays["residual_energy"]
        self._adjacency.indptr = arrays["adjacency_indptr"]
        self._adjacency.indices = arrays["adjacency_indices"]
        if self._gabriel_csr is not None and "gabriel_indptr" in arrays:
            self._gabriel_csr.indptr = arrays["gabriel_indptr"]
            self._gabriel_csr.indices = arrays["gabriel_indices"]
        if self._rng_csr is not None and "rng_indptr" in arrays:
            self._rng_csr.indptr = arrays["rng_indptr"]
            self._rng_csr.indices = arrays["rng_indices"]
        self._grid.adopt_member_arrays(arrays)
        self._shared_state = True

    def _ensure_private_node_state(self) -> None:
        """Copy-on-write: make the flat node state private before a write.

        No-op on ordinary networks.  On a shared-backed one (attached, or
        the publishing parent after :meth:`adopt_shared_arrays`) this
        copies the mutable per-node arrays out of the mapped segment, so
        worker-local failures, moves and energy drains never touch bytes
        other processes read.  Values are unchanged, so derived caches
        stay exact and nothing needs invalidating (R012 exempts the
        configured copy-on-write hooks); reprolint R017 enforces that
        every mutator of
        shared-capable arrays reaches this first.  The CSR adjacency and
        grid member arrays stay shared: their mutation paths are already
        copy-on-write (sparse ``set_row`` overrides; per-cell refreshes
        that *replace* entries instead of writing in place).
        """
        if not self._shared_state:
            return
        self.locations = self.locations.copy()
        self.alive = self.alive.copy()
        self.residual_energy_j = self.residual_energy_j.copy()
        self._shared_state = False

    # ------------------------------------------------------------------
    # Mutation (node failures and mobility) with cache invalidation
    # ------------------------------------------------------------------

    @property
    def failed_nodes(self) -> frozenset:
        """Ids of nodes killed by :meth:`fail_node`."""
        return frozenset(self._failed)

    def _invalidate_node(self, node_id: int) -> None:
        """Drop every derived structure touching ``node_id``."""
        self._gabriel_cache.pop(node_id, None)
        self._rng_cache.pop(node_id, None)
        self._neighbor_arrays[node_id] = None
        self._neighbor_sets[node_id] = None
        # Whole-graph planar overlays are rebuilt lazily after any mutation.
        self._gabriel_csr = None
        self._rng_csr = None

    def fail_node(self, node_id: int) -> None:
        """Kill node ``node_id``: it vanishes from every topology query.

        The spatial grid drops the point (per-cell bounds and member arrays
        recomputed), the failed node is removed from each former neighbor's
        table, and all derived caches of the affected nodes — planarized
        neighbor subsets, :meth:`neighbor_location_array` rows, the
        ``networkx`` view — are invalidated.  After this call every query
        answers exactly as a network freshly built from the surviving nodes.
        """
        if node_id in self._failed:
            raise ValueError(f"node {node_id} has already failed")
        self._ensure_private_node_state()
        former = self._adjacency.row_tuple(node_id)
        self._failed.add(node_id)
        self.alive[node_id] = False
        self._grid.remove_point(node_id)
        for n in former:
            row = self._adjacency.row(n)
            self._adjacency.set_row(n, row[row != node_id])
            self._invalidate_node(n)
        self._adjacency.set_row(node_id, ())
        self._invalidate_node(node_id)
        self._nx_graph = None

    def move_node(self, node_id: int, new_location: Point) -> None:
        """Relocate a live node, rebuilding exactly the affected state.

        Neighbor tables of the moved node, of its former neighbors and of
        its new neighbors are recomputed from the grid; their planarization
        and location-array caches are invalidated.  Untouched nodes keep
        their cached structures — the regression tests diff the result
        against a network rebuilt from scratch.
        """
        if node_id in self._failed:
            raise ValueError(f"cannot move failed node {node_id}")
        self._ensure_private_node_state()
        new_location = Point(float(new_location[0]), float(new_location[1]))
        old_neighbors = self._adjacency.row_tuple(node_id)
        self.nodes[node_id] = SensorNode(node_id=node_id, location=new_location)
        self.locations[node_id] = (new_location[0], new_location[1])
        self._grid.move_point(node_id, new_location)
        rr = self.radio.radio_range_m
        new_row = sorted(
            i for i in self._grid.indices_within(new_location, rr) if i != node_id
        )
        self._adjacency.set_row(node_id, new_row)
        affected = set(old_neighbors) | set(new_row)
        for n in affected:
            self._adjacency.set_row(
                n,
                sorted(
                    i
                    for i in self._grid.indices_within(self.nodes[n].location, rr)
                    if i != n
                ),
            )
            self._invalidate_node(n)
        self._invalidate_node(node_id)
        self._nx_graph = None

    # ------------------------------------------------------------------
    # Planar overlays (local computations, cached)
    # ------------------------------------------------------------------

    def gabriel_neighbors_of(self, node_id: int) -> Tuple[int, ...]:
        """Neighbors kept by the Gabriel-graph planarization at ``node_id``.

        Computed from purely local information (the node's own neighbor
        table), exactly as GPSR/GMP planarize in the field.
        """
        if node_id not in self._gabriel_cache:
            self._gabriel_cache[node_id] = gabriel_neighbors(
                node_id,
                self._adjacency.row_tuple(node_id),
                lambda i: self.nodes[i].location,
            )
        return self._gabriel_cache[node_id]

    def rng_neighbors_of(self, node_id: int) -> Tuple[int, ...]:
        """Neighbors kept by the Relative-Neighborhood-Graph planarization."""
        if node_id not in self._rng_cache:
            self._rng_cache[node_id] = rng_neighbors(
                node_id,
                self._adjacency.row_tuple(node_id),
                lambda i: self.nodes[i].location,
            )
        return self._rng_cache[node_id]

    def gabriel_adjacency(self) -> CSRAdjacency:
        """Whole-network Gabriel overlay as a CSR adjacency (lazily built).

        Shares the representation of the unit-disk adjacency: row ``i``
        equals :meth:`gabriel_neighbors_of`, computed through the batched
        keep-mask kernels when vectorization is on.  Invalidated as a whole
        by any topology mutation.
        """
        if self._gabriel_csr is None:
            self._gabriel_csr = CSRAdjacency.from_rows(
                [self.gabriel_neighbors_of(i) for i in range(len(self.nodes))]
            )
        return self._gabriel_csr

    def rng_adjacency(self) -> CSRAdjacency:
        """Whole-network RNG overlay as a CSR adjacency (lazily built)."""
        if self._rng_csr is None:
            self._rng_csr = CSRAdjacency.from_rows(
                [self.rng_neighbors_of(i) for i in range(len(self.nodes))]
            )
        return self._rng_csr

    # ------------------------------------------------------------------
    # Global views (for SMT and diagnostics only)
    # ------------------------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """The unit-disk graph with Euclidean edge weights (cached)."""
        if self._nx_graph is None:
            graph = nx.Graph()
            for node in self.nodes:
                if node.node_id in self._failed:
                    continue
                graph.add_node(node.node_id, location=node.location)
            for node in self.nodes:
                for other in self._adjacency.row_tuple(node.node_id):
                    if other > node.node_id:
                        graph.add_edge(
                            node.node_id,
                            other,
                            weight=distance(node.location, self.nodes[other].location),
                        )
            self._nx_graph = graph
        return self._nx_graph

    def is_connected(self) -> bool:
        """Whether the unit-disk graph is a single component."""
        return nx.is_connected(self.to_networkx())


def build_network(
    points: Iterable[Point],
    radio: RadioConfig | None = None,
) -> WirelessNetwork:
    """Convenience constructor with Table-1 radio defaults."""
    return WirelessNetwork(list(points), radio or RadioConfig())


def attach_shared_network(
    radio: RadioConfig, arrays: Dict[str, np.ndarray]
) -> WirelessNetwork:
    """Reconstruct a read-only ``WirelessNetwork`` over mapped plane buffers.

    The attach-side twin of :meth:`WirelessNetwork.shared_state_arrays`
    (the plane in ``repro.perf.shm`` provides ``arrays`` as read-only
    views of a ``multiprocessing.shared_memory`` segment): node state,
    the CSR adjacency, any published planar overlays and the spatial
    grid's member arrays are used zero-copy; node objects materialize
    lazily; and every derived cache starts empty and fills exactly as a
    fresh build's would — so queries, traces and digests are
    byte-identical to a network built from scratch.  Mutators copy node
    state private on first write (:meth:`_ensure_private_node_state`),
    keeping the mapped segment immutable.
    """
    network = WirelessNetwork.__new__(WirelessNetwork)
    network.radio = radio
    network.locations = arrays["locations"]
    network.alive = arrays["alive"]
    network.residual_energy_j = arrays["residual_energy"]
    count = int(network.locations.shape[0])
    network.nodes = _SharedNodeList(network.locations)
    network._grid = SpatialGrid.from_packed(
        network.locations, radio.radio_range_m, arrays
    )
    network._soa = True
    network._adjacency = CSRAdjacency(
        arrays["adjacency_indptr"], arrays["adjacency_indices"]
    )
    network._neighbor_sets = [None] * count
    network._gabriel_cache = {}
    network._rng_cache = {}
    network._gabriel_csr = (
        CSRAdjacency(arrays["gabriel_indptr"], arrays["gabriel_indices"])
        if "gabriel_indptr" in arrays
        else None
    )
    network._rng_csr = (
        CSRAdjacency(arrays["rng_indptr"], arrays["rng_indices"])
        if "rng_indptr" in arrays
        else None
    )
    network._neighbor_arrays = [None] * count
    network._nx_graph = None
    network._failed = set()
    network._shared_state = True
    return network
