"""Node placement generators.

The paper's evaluation places 1000 nodes uniformly at random in a
1000 m x 1000 m field (Table 1) and sweeps the node count down to 400 for
the density experiment (Figure 15).  Beyond the uniform generator we provide
grid, clustered and void-carving placements for examples, failure-injection
tests and ablations.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry import Point


def uniform_random_topology(
    node_count: int,
    width: float,
    height: float,
    rng: np.random.Generator,
) -> List[Point]:
    """``node_count`` points uniform in ``[0, width] x [0, height]``."""
    _validate_field(node_count, width, height)
    xs = rng.uniform(0.0, width, size=node_count)
    ys = rng.uniform(0.0, height, size=node_count)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def grid_topology(
    node_count: int,
    width: float,
    height: float,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
) -> List[Point]:
    """A near-square grid of ``node_count`` points, optionally jittered.

    Deterministic when ``jitter`` is zero.  Useful for tests that need a
    predictable, guaranteed-connected topology.
    """
    _validate_field(node_count, width, height)
    if jitter < 0:
        raise ValueError(f"jitter must be non-negative, got {jitter}")
    if jitter > 0 and rng is None:
        raise ValueError("a jittered grid needs an rng")
    cols = max(1, int(math.ceil(math.sqrt(node_count * width / height))))
    rows = max(1, int(math.ceil(node_count / cols)))
    points: List[Point] = []
    for idx in range(node_count):
        r, c = divmod(idx, cols)
        x = (c + 0.5) * width / cols
        y = (r + 0.5) * height / rows
        if jitter > 0 and rng is not None:
            x += float(rng.uniform(-jitter, jitter))
            y += float(rng.uniform(-jitter, jitter))
        points.append(Point(min(max(x, 0.0), width), min(max(y, 0.0), height)))
    return points


def clustered_topology(
    node_count: int,
    width: float,
    height: float,
    cluster_count: int,
    cluster_spread: float,
    rng: np.random.Generator,
) -> List[Point]:
    """Gaussian clusters — models dense sensing patches with sparse gaps."""
    _validate_field(node_count, width, height)
    if cluster_count <= 0:
        raise ValueError(f"cluster count must be positive, got {cluster_count}")
    if cluster_spread <= 0:
        raise ValueError(f"cluster spread must be positive, got {cluster_spread}")
    centers_x = rng.uniform(0.0, width, size=cluster_count)
    centers_y = rng.uniform(0.0, height, size=cluster_count)
    assignments = rng.integers(0, cluster_count, size=node_count)
    points: List[Point] = []
    for idx in range(node_count):
        cluster = int(assignments[idx])
        x = float(np.clip(rng.normal(centers_x[cluster], cluster_spread), 0.0, width))
        y = float(np.clip(rng.normal(centers_y[cluster], cluster_spread), 0.0, height))
        points.append(Point(x, y))
    return points


def topology_with_voids(
    node_count: int,
    width: float,
    height: float,
    voids: Sequence[Tuple[Point, float]],
    rng: np.random.Generator,
    max_attempts_per_node: int = 1000,
) -> List[Point]:
    """Uniform placement avoiding circular void regions.

    Voids force geographic routing into perimeter mode, exercising the
    recovery paths of Section 4.1 (and the failure experiment of Figure 15).

    Args:
        voids: ``(center, radius)`` pairs; no node lands inside any of them.
    """
    _validate_field(node_count, width, height)
    for center, radius in voids:
        if radius <= 0:
            raise ValueError(f"void radius must be positive, got {radius}")
        if not (0.0 <= center[0] <= width and 0.0 <= center[1] <= height):
            raise ValueError(f"void center {center} outside the field")
    points: List[Point] = []
    for _ in range(node_count):
        for attempt in range(max_attempts_per_node):
            x = float(rng.uniform(0.0, width))
            y = float(rng.uniform(0.0, height))
            if all(
                math.hypot(x - c[0], y - c[1]) >= r for c, r in voids
            ):
                points.append(Point(x, y))
                break
        else:
            raise RuntimeError(
                "could not place a node outside the voids; voids cover too much area"
            )
    return points


def _validate_field(node_count: int, width: float, height: float) -> None:
    if node_count <= 0:
        raise ValueError(f"node count must be positive, got {node_count}")
    if width <= 0 or height <= 0:
        raise ValueError(f"field dimensions must be positive, got {width}x{height}")
