"""Packet model for location-addressed multicast forwarding."""

from repro.packets.packet import Destination, MulticastPacket, PerimeterState

__all__ = ["Destination", "MulticastPacket", "PerimeterState"]
