"""Multicast packets.

Per the paper's model (Sections 2 and 4): a packet carries the locations of
the destinations still to be served by the branch of the dissemination it
belongs to, a hop counter (the paper's Figure-15 experiment drops packets at
100 hops), and — while recovering from a void — the perimeter-mode state of
Section 4.1.

Because a node's location is its address, a destination is represented as a
``(node_id, location)`` pair; the integer id is only an efficient lookup key
for the simulation engine, never an input to routing decisions.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import NamedTuple, Optional, Sequence, Tuple

from repro.geometry import Point


class Destination(NamedTuple):
    """One multicast destination: the node and its (address) location."""

    node_id: int
    location: Point


@dataclass(frozen=True)
class PerimeterState:
    """GPSR-style perimeter-mode bookkeeping (paper Section 4.1).

    Attributes:
        target: Average location of the group's (void) destinations; the
            point perimeter forwarding walks toward.
        entry_location: Where the packet entered perimeter mode (GPSR's Lp).
        entry_total_distance: Sum of distances from ``entry_location`` to the
            group's destinations at entry time; a node may leave perimeter
            mode only once its own total distance beats this, mirroring the
            paper's "closer than the point where the packet entered" rule.
        came_from: Location of the previous hop, the reference edge for the
            right-hand rule (``None`` right after entering).
        face_crossing: Best intersection of a traversed edge with the
            ``entry_location -> target`` segment so far (GPSR's Lf), used to
            decide face changes.
        first_edge: The first directed edge taken on the current face; about
            to re-traverse it means the whole face was toured without
            progress, i.e. the target is unreachable.
    """

    target: Point
    entry_location: Point
    entry_total_distance: float
    came_from: Optional[Point] = None
    face_crossing: Optional[Point] = None
    first_edge: Optional[Tuple[Point, Point]] = None

    def advanced(self, **updates) -> "PerimeterState":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **updates)


@dataclass(frozen=True)
class MulticastPacket:
    """An in-flight multicast packet (or one branch copy of it).

    Immutable: every forwarding step produces fresh copies via the
    ``with_*`` helpers, so branches of the dissemination can never alias
    each other's state.
    """

    task_id: int
    source: Destination
    destinations: Tuple[Destination, ...]
    hop_count: int = 0
    perimeter: Optional[PerimeterState] = None
    #: Current subtree root for protocols that unicast each copy toward a
    #: fixed subdestination and only re-partition there (LGS/LGK; the GMP
    #: paper's Figure-13 analysis hinges on LGS *not* splitting at
    #: intermediate nodes).  ``None`` for per-hop protocols like GMP/PBM.
    subdestination: Optional[Destination] = None
    payload_bytes: int = 128

    def __post_init__(self) -> None:
        if self.hop_count < 0:
            raise ValueError(f"hop count must be non-negative, got {self.hop_count}")
        if self.payload_bytes <= 0:
            raise ValueError(f"payload must be positive, got {self.payload_bytes}")
        seen = set()
        for dest in self.destinations:
            if dest.node_id in seen:
                raise ValueError(f"duplicate destination {dest.node_id} in packet")
            seen.add(dest.node_id)

    @property
    def destination_ids(self) -> Tuple[int, ...]:
        return tuple(d.node_id for d in self.destinations)

    @property
    def destination_locations(self) -> Tuple[Point, ...]:
        return tuple(d.location for d in self.destinations)

    @property
    def in_perimeter_mode(self) -> bool:
        return self.perimeter is not None

    def without_destination(self, node_id: int) -> "MulticastPacket":
        """Copy with ``node_id`` removed from the destination list."""
        remaining = tuple(d for d in self.destinations if d.node_id != node_id)
        if len(remaining) == len(self.destinations):
            return self
        return dataclasses.replace(self, destinations=remaining)

    def with_destinations(
        self,
        destinations: Sequence[Destination],
        subdestination: Optional[Destination] = None,
    ) -> "MulticastPacket":
        """Copy restricted to the given destination subset (PERIMODE cleared).

        Splitting the destinations into groups produces per-group copies; a
        greedy (non-perimeter) forward always clears the perimeter flag, as
        in step 4 of the paper's Figure 7.  ``subdestination`` pins the
        copy's subtree root for unicast-toward-root protocols (LGS/LGK);
        omitted, the copy carries none.
        """
        return dataclasses.replace(
            self,
            destinations=tuple(destinations),
            perimeter=None,
            subdestination=subdestination,
        )

    def with_perimeter(
        self,
        destinations: Sequence[Destination],
        state: PerimeterState,
    ) -> "MulticastPacket":
        """Copy restricted to ``destinations``, marked in perimeter mode."""
        return dataclasses.replace(
            self,
            destinations=tuple(destinations),
            perimeter=state,
            subdestination=None,
        )

    def hopped(self) -> "MulticastPacket":
        """Copy with the hop counter incremented (one radio transmission)."""
        return dataclasses.replace(self, hop_count=self.hop_count + 1)

    def header_size_bytes(self) -> int:
        """Wire-size estimate of the geographic header.

        16 bytes per embedded location (two float64 coordinates) for the
        next-hop address, the source and each destination, plus 4 bytes of
        flags/counters.  The paper charges a flat 128-byte message for
        energy; this estimate exists for the header-overhead ablation.
        """
        embedded_locations = 2 + len(self.destinations)
        if self.perimeter is not None:
            embedded_locations += 3
        return 4 + 16 * embedded_locations
