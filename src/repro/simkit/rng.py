"""Seeded random-stream management.

Experiments in the paper average over 10 networks x 100 tasks.  To make every
one of those runs individually reproducible we never share a global RNG:
each purpose ("topology", "workload", ...) gets its own stream derived from
a master seed by stable hashing, so adding a new consumer of randomness
cannot perturb existing streams.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(master_seed: int, *labels: object) -> int:
    """Derive a 63-bit child seed from ``master_seed`` and a label path.

    Stable across processes and Python versions (uses SHA-256, not
    ``hash()``).
    """
    digest = hashlib.sha256()
    digest.update(str(int(master_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") >> 1


class RandomStreams:
    """A family of independent, purpose-named NumPy generators."""

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, *labels: object) -> np.random.Generator:
        """Generator for the given label path (created on first use)."""
        key = "/".join(repr(label) for label in labels)
        if key not in self._streams:
            self._streams[key] = np.random.default_rng(
                derive_seed(self._master_seed, *labels)
            )
        return self._streams[key]

    def fork(self, *labels: object) -> "RandomStreams":
        """A child family whose master seed is derived from this one."""
        return RandomStreams(derive_seed(self._master_seed, *labels))
