"""The simulation executive: a virtual clock driving an event heap."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.perf.soa import soa_enabled
from repro.simkit.event import Event
from repro.simkit.scheduler import CalendarScheduler, EventScheduler


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly (e.g. time travel)."""


class Simulator:
    """Single-threaded discrete-event simulator.

    Callbacks scheduled via :meth:`schedule_at` / :meth:`schedule_after` run
    with the clock advanced to their firing time.  The executive is
    re-entrant in the usual DES sense: callbacks may schedule further events.

    The event queue backend follows ``repro.perf.soa.set_soa_enabled``: the
    calendar queue by default, the binary-heap reference when disabled.
    Both pop in identical ``(time, sequence)`` order, so the choice is
    invisible to every layer above.
    """

    def __init__(self) -> None:
        self._scheduler = (
            CalendarScheduler() if soa_enabled() else EventScheduler()
        )
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (uncancelled) events still queued."""
        return len(self._scheduler)

    def schedule_at(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} (clock is at {self._now})"
            )
        return self._scheduler.schedule(time, action, label)

    def schedule_after(self, delay: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` after a non-negative ``delay``."""
        if delay < 0.0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self._scheduler.schedule(self._now + delay, action, label)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self._scheduler.cancel(event)

    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` when the queue is empty."""
        event = self._scheduler.pop_next()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        event.action()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Drain the event queue.

        Args:
            until: Stop once the clock would pass this time (events at later
                times remain queued).
            max_events: Safety valve against runaway simulations; raising is
                better than silently looping forever.

        Returns:
            The virtual time when the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        fired = 0
        try:
            while True:
                next_time = self._scheduler.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a routing loop"
                    )
                self.step()
                fired += 1
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._scheduler.clear()
        self._now = 0.0
        self._events_processed = 0
