"""Event schedulers: a binary-heap reference and a calendar queue.

Both order events strictly by ``(time, sequence)`` — the insertion-order
tiebreak that makes every run deterministic — and expose the same interface,
so :class:`repro.simkit.simulator.Simulator` can swap one for the other
(``repro.perf.soa.set_soa_enabled``) without any observable difference in
results.  The property tests drive both with identical seeded workloads and
assert the popped event streams are exactly equal.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional, Tuple

from repro.simkit.event import Event


class EventScheduler:
    """Priority queue of :class:`Event` ordered by ``(time, sequence)``.

    The binary-heap reference implementation: O(log n) per operation,
    obviously correct, and the ordering oracle for
    :class:`CalendarScheduler`.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def schedule(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Insert an event firing at ``time``; returns it for cancellation."""
        if time < 0.0:
            raise ValueError(f"cannot schedule an event at negative time {time!r}")
        event = Event(time=time, sequence=self._sequence, action=action, label=label)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event``; it will be skipped when popped."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def pop_next(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Firing time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop every pending event and restart the sequence counter.

        A cleared scheduler is indistinguishable from a fresh one: the same
        schedule calls issue the same sequence numbers, so a reused
        simulator replays a workload with identical tie-breaking.
        """
        self._heap.clear()
        self._sequence = 0
        self._live = 0


class CalendarScheduler:
    """Calendar-queue scheduler tuned for dense near-future event streams.

    The contended MAC schedules bursts of events a few microseconds to a few
    milliseconds ahead (carrier-sense slots, backoff expiries, ACK
    timeouts); with tens of thousands of timers pending at once — the
    50k/100k-node regime — a calendar queue (Brown 1988) makes those
    operations amortized O(1).  Virtual time is divided into fixed-``width``
    windows assigned round-robin to ``bucket_count`` buckets; each bucket is
    a small binary heap.  Window scanning maintains the invariant that every
    event of the current window sits in the current bucket, so comparing the
    bucket's heap top against the window bound yields the global minimum —
    events pop in *exactly* ``(time, sequence)`` order, never approximately.

    Small live populations stay in a plain binary heap instead: below a few
    thousand pending events C-implemented ``heapq`` beats any pure-Python
    window walk, so the calendar machinery only switches on once the live
    count crosses ``_CALENDAR_ON`` (and back off below ``_CALENDAR_OFF`` —
    the 4x hysteresis keeps a population hovering at the boundary from
    thrashing).  Both representations pop in exactly the same order, so the
    migrations are invisible to callers.

    In calendar mode the bucket count doubles/halves as the live population
    grows/shrinks, and each resize re-estimates ``width`` from the mean gap
    between pending event times.  Every mode/shape decision depends only on
    event counts, so the structure (and the popped order) is deterministic
    for a given call sequence.  Cancellation is lazy, as in the reference.
    """

    _MIN_BUCKETS = 4
    _MAX_BUCKETS = 1 << 17
    #: Live-population bounds for heap <-> calendar migration.
    _CALENDAR_ON = 4096
    _CALENDAR_OFF = 1024

    def __init__(self) -> None:
        self._sequence = 0
        self._live = 0
        self._stored = 0  # live + lazily-cancelled events still stored
        self._calendar = False
        self._heap: List[Event] = []
        self._setup(self._MIN_BUCKETS, 1.0, ())

    def __len__(self) -> int:
        return self._live

    def _setup(
        self, bucket_count: int, width: float, events: Tuple[Event, ...]
    ) -> None:
        """(Re)build the calendar and re-bucket ``events`` (already sorted)."""
        self._buckets: List[List[Event]] = [[] for _ in range(bucket_count)]
        self._bucket_count = bucket_count
        self._width = width
        # Index of the window being drained; events in window w span
        # [w*width, (w+1)*width) and live in bucket w % bucket_count.
        self._window = int(events[0].time // width) if events else 0
        self._stored = len(events)
        for event in events:
            heapq.heappush(
                self._buckets[int(event.time // width) % bucket_count], event
            )

    def _pending_sorted(self) -> Tuple[Event, ...]:
        """Live events in (time, sequence) order; drops cancelled ones."""
        pending = [
            event
            for bucket in self._buckets
            for event in bucket
            if not event.cancelled
        ]
        pending.sort()
        return tuple(pending)

    def _resize(self, bucket_count: int) -> None:
        events = self._pending_sorted()
        self._setup(bucket_count, self._estimate_width(events), events)

    def _to_calendar(self) -> None:
        """Migrate the heap into calendar buckets (live count crossed up).

        Seeds the calendar at half the trigger population's bucket count so
        the doubling rule is immediately consistent; the width estimate
        comes from the actual pending gaps, exactly as on a resize.
        """
        events = tuple(sorted(e for e in self._heap if not e.cancelled))
        self._heap = []
        self._calendar = True
        bucket_count = max(self._MIN_BUCKETS, self._CALENDAR_ON // 2)
        self._setup(bucket_count, self._estimate_width(events), events)

    def _to_heap(self) -> None:
        """Migrate calendar buckets back into a heap (live count crossed down)."""
        events = self._pending_sorted()
        self._calendar = False
        self._setup(self._MIN_BUCKETS, self._width, ())
        self._heap = list(events)  # a sorted list is a valid min-heap

    def _estimate_width(self, events: Tuple[Event, ...]) -> float:
        """Twice the mean positive gap between adjacent pending times.

        Brown's rule of thumb: with windows about two mean gaps wide, a
        window holds a couple of events on average — wide enough that the
        scan rarely crosses empty windows, narrow enough that a bucket heap
        stays tiny.  Falls back to the current width when the pending set
        is degenerate (fewer than two distinct times).
        """
        gaps = 0.0
        count = 0
        for earlier, later in zip(events, events[1:]):
            gap = later.time - earlier.time
            if gap > 0.0:
                gaps += gap
                count += 1
        if count == 0:
            return self._width
        width = 2.0 * gaps / count
        if not math.isfinite(width) or width <= 0.0:
            return self._width
        return width

    def schedule(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Insert an event firing at ``time``; returns it for cancellation."""
        if time < 0.0:
            raise ValueError(f"cannot schedule an event at negative time {time!r}")
        event = Event(time=time, sequence=self._sequence, action=action, label=label)
        self._sequence += 1
        self._live += 1
        if not self._calendar:
            heapq.heappush(self._heap, event)
            if self._live > self._CALENDAR_ON:
                self._to_calendar()
            return event
        window = int(time // self._width)
        heapq.heappush(self._buckets[window % self._bucket_count], event)
        if window < self._window:
            # Earlier than the window being drained (the simulator never
            # does this, but the scheduler does not rely on that): rewind
            # so the scan cannot skip the new event.
            self._window = window
        self._stored += 1
        if self._live > 2 * self._bucket_count and self._bucket_count < self._MAX_BUCKETS:
            self._resize(self._bucket_count * 2)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event``; it will be skipped when popped."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def _current_bucket(self) -> Optional[List[Event]]:
        """Advance the window scan to the bucket holding the earliest event.

        On return the heap top of the returned bucket IS the global minimum
        (and belongs to the current window), so the caller peeks or pops it
        in O(1)/O(log bucket-size).  Returns ``None`` when no live event
        remains.
        """
        if self._live == 0:
            if self._stored:
                # Everything left is cancelled — drop it all in one sweep.
                self._setup(self._bucket_count, self._width, ())
            return None
        scanned = 0
        while True:
            bucket = self._buckets[self._window % self._bucket_count]
            while bucket and bucket[0].cancelled:
                heapq.heappop(bucket)
                self._stored -= 1
            if bucket and int(bucket[0].time // self._width) <= self._window:
                return bucket
            self._window += 1
            scanned += 1
            if scanned >= self._bucket_count:
                # A full cycle of sparse windows: jump straight to the
                # window of the earliest bucket-top instead of walking
                # arbitrarily many empty windows.
                best: Optional[Event] = None
                for candidate in self._buckets:
                    while candidate and candidate[0].cancelled:
                        heapq.heappop(candidate)
                        self._stored -= 1
                    if candidate and (best is None or candidate[0] < best):
                        best = candidate[0]
                assert best is not None  # self._live > 0
                self._window = int(best.time // self._width)
                return self._buckets[self._window % self._bucket_count]

    def pop_next(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        if not self._calendar:
            while self._heap:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._live -= 1
                return event
            return None
        bucket = self._current_bucket()
        if bucket is None:
            return None
        event = heapq.heappop(bucket)
        self._live -= 1
        self._stored -= 1
        if self._live < self._CALENDAR_OFF:
            self._to_heap()
        elif (
            self._live < self._bucket_count // 4
            and self._bucket_count > self._MIN_BUCKETS
        ):
            self._resize(self._bucket_count // 2)
        return event

    def peek_time(self) -> Optional[float]:
        """Firing time of the earliest live event, or ``None`` if empty.

        In calendar mode, leaves the window scan positioned on that event's
        bucket, so the peek-then-pop pattern of the simulator main loop does
        the window walk once, not twice.
        """
        if not self._calendar:
            while self._heap and self._heap[0].cancelled:
                heapq.heappop(self._heap)
            return self._heap[0].time if self._heap else None
        bucket = self._current_bucket()
        return bucket[0].time if bucket else None

    def clear(self) -> None:
        """Drop every pending event and restart the sequence counter."""
        self._sequence = 0
        self._live = 0
        self._calendar = False
        self._heap = []
        self._setup(self._MIN_BUCKETS, 1.0, ())
