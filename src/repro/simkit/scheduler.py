"""A binary-heap event scheduler with lazy cancellation."""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.simkit.event import Event


class EventScheduler:
    """Priority queue of :class:`Event` ordered by ``(time, sequence)``."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def schedule(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Insert an event firing at ``time``; returns it for cancellation."""
        if time < 0.0:
            raise ValueError(f"cannot schedule an event at negative time {time!r}")
        event = Event(time=time, sequence=self._sequence, action=action, label=label)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event``; it will be skipped when popped."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def pop_next(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Firing time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
