"""A small deterministic discrete-event simulation kernel.

This is the reproduction's substitute for ns-2.27: an event heap with a
virtual clock, plus seeded random-stream management so that every topology,
workload and run is exactly reproducible from ``(seed, config)``.

The kernel is deliberately generic — the wireless specifics (radio medium,
energy accounting) live in :mod:`repro.network` and :mod:`repro.engine` on
top of it.
"""

from repro.simkit.event import Event
from repro.simkit.scheduler import CalendarScheduler, EventScheduler
from repro.simkit.simulator import Simulator, SimulationError
from repro.simkit.rng import RandomStreams, derive_seed

__all__ = [
    "Event",
    "CalendarScheduler",
    "EventScheduler",
    "Simulator",
    "SimulationError",
    "RandomStreams",
    "derive_seed",
]
