"""Simulation events.

An :class:`Event` binds a firing time to a callback.  Events are totally
ordered by ``(time, sequence)`` where the sequence number is assigned by the
scheduler at insertion: simultaneous events therefore fire in the order they
were scheduled, which keeps runs deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Virtual time (seconds) at which the event fires.
        sequence: Tie-breaker assigned by the scheduler; never compare two
            events from different schedulers.
        action: Zero-argument callable invoked when the event fires.
        label: Human-readable tag for tracing and error messages.
        cancelled: Lazily-deleted flag; cancelled events are skipped when
            popped instead of being removed from the heap.
    """

    time: float
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler discards it when popped."""
        self.cancelled = True
