"""Command-line entry point: figures, tables, and the reprolint gate.

Examples::

    python -m repro.cli config
    python -m repro.cli figure11 --scale quick
    python -m repro.cli all --scale paper --json results.json
    python -m repro.cli robustness --scale smoke --adversary
    python -m repro.cli fuzz --seed 7 --budget 25 --json store.json
    python -m repro.cli lint src/
    python -m repro.cli lint --list-rules
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.experiments.config import PaperConfig, scale_by_name
from repro.experiments.figures import (
    FigureResult,
    figure11,
    figure12,
    figure14,
    figure15,
    run_group_size_sweep,
)
from repro.experiments.report import render_figure_table, render_ratio_summary
from repro.perf.counters import GLOBAL_COUNTERS, StageTimer
from repro.sessions.store import CheckpointError

_FIGURE_COMMANDS = (
    "config",
    "figure11",
    "figure12",
    "figure14",
    "figure15",
    "all",
    "figures",  # alias of "all"
    "ablations",
    "robustness",
    "contention",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gmp-repro",
        description=(
            "Reproduction harness for 'GMP: Distributed Geographic Multicast "
            "Routing in Wireless Sensor Networks' (ICDCS 2006)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiment_options = argparse.ArgumentParser(add_help=False)
    experiment_options.add_argument(
        "--scale",
        default="quick",
        help="statistical scale: smoke, quick, or paper (default: quick)",
    )
    experiment_options.add_argument(
        "--seed", type=int, default=None, help="override the master seed"
    )
    experiment_options.add_argument(
        "--nodes", type=int, default=None, help="override the node count"
    )
    experiment_options.add_argument(
        "--json", dest="json_path", default=None, help="also write results as JSON"
    )
    experiment_options.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )
    experiment_options.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the experiment sweeps (default: 1, serial)",
    )
    experiment_options.add_argument(
        "--perf",
        action="store_true",
        help="print cache hit rates and per-stage wall time after the run",
    )
    experiment_options.add_argument(
        "--no-shared-plane",
        action="store_true",
        help=(
            "disable the zero-copy shared-memory network plane (workers "
            "rebuild deployments instead of attaching; results are "
            "byte-identical either way — this is the A/B switch)"
        ),
    )
    for name in _FIGURE_COMMANDS:
        subparsers.add_parser(
            name, parents=[experiment_options], help=f"regenerate {name}"
        )
    subparsers.choices["robustness"].add_argument(
        "--adversary",
        action="store_true",
        help=(
            "also sweep adversarial node counts "
            "(dropper/spoofer/suppressor behaviors)"
        ),
    )

    subparsers.add_parser(
        "scale",
        parents=[experiment_options],
        help=(
            "large-scale constant-density sweep (presets: smoke/quick/paper "
            "at 2k-10k nodes, smoke50k at 50k, deep at 50k+100k)"
        ),
    )

    sessions = subparsers.add_parser(
        "sessions",
        parents=[experiment_options],
        help=(
            "streaming-session throughput sweep (presets: smoke/quick/paper; "
            "arrival-process workloads folded into bounded-memory sketches)"
        ),
    )
    sessions.add_argument(
        "--checkpoint-dir",
        default=None,
        help="checkpoint each cell here and resume from it on rerun",
    )
    sessions.add_argument(
        "--stop-after",
        type=int,
        default=0,
        help=(
            "halt after this many sessions complete this run (deterministic "
            "interruption for resume testing; use with --checkpoint-dir)"
        ),
    )

    fuzz = subparsers.add_parser(
        "fuzz",
        help=(
            "run the deterministic scenario fuzzer (adversary/fault "
            "schedules against the failure oracles)"
        ),
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=20060704,
        help="campaign root seed (default: 20060704)",
    )
    fuzz.add_argument(
        "--budget",
        type=int,
        default=25,
        help="number of scenarios to generate and run (default: 25)",
    )
    fuzz.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="write the canonical results store to this path",
    )
    fuzz.add_argument(
        "--fixtures-dir",
        default=None,
        help="write shrunk findings as regression fixtures into this directory",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="record findings without minimizing them",
    )
    fuzz.add_argument(
        "--fail-on-findings",
        action="store_true",
        help="exit 1 if any oracle fired (CI gate)",
    )
    fuzz.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the reprolint determinism & protocol-contract analyzer",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "scripts", "benchmarks"],
        help=(
            "files or directories to analyze "
            "(default: src tests scripts benchmarks)"
        ),
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list the rule set and exit"
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by suppression comments",
    )
    lint.add_argument(
        "--format",
        dest="lint_format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--output",
        dest="lint_output",
        default=None,
        help="write the report to a file instead of stdout",
    )
    return parser


def _make_config(args: argparse.Namespace) -> PaperConfig:
    kwargs = {}
    if args.seed is not None:
        kwargs["master_seed"] = args.seed
    if args.nodes is not None:
        kwargs["node_count"] = args.nodes
    return PaperConfig(**kwargs)


def _write_json(
    path: str,
    figures_payload: Dict,
    scale_name: str,
    master_seed: int,
    progress,
) -> None:
    """Write a figure payload (plus run provenance) as JSON."""
    payload = dict(figures_payload)
    payload["scale"] = scale_name
    payload["master_seed"] = master_seed
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    progress(f"wrote {path}")


def _rss_divisor(platform: str) -> float:
    """``ru_maxrss`` unit divisor to MiB: KiB on Linux, bytes on macOS."""
    return 1024.0 * 1024.0 if platform == "darwin" else 1024.0


def _format_peak_rss(
    self_mib: float, worker_mib: float, shared_mib: float
) -> str:
    """Render the one-line memory telemetry message.

    The shared-memory plane's segments are mapped into every process, so
    naive per-process RSS sums would count them once per worker; they are
    reported once, as their own component, instead.
    """
    message = f"peak RSS: {self_mib:.0f} MiB"
    if worker_mib > 0.0:
        message += f" (largest worker {worker_mib:.0f} MiB)"
    if shared_mib > 0.0:
        message += f" (shared={shared_mib:.0f} MiB, counted once)"
    return message


def _report_peak_rss(progress) -> None:
    """Report peak resident set size via ``progress`` (stderr, not stdout).

    Memory telemetry for the large-scale sweeps; stdout stays reserved for
    results so CI can diff serial vs parallel runs byte-for-byte.  Worker
    processes are accounted separately — ``ru_maxrss`` of reaped children
    is the largest single worker, not their sum — and shared-memory plane
    segments are accounted once (they back every process's mapping).
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return
    from repro.perf.shm import peak_published_bytes

    divisor = _rss_divisor(sys.platform)
    peak_self = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / divisor
    peak_child = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / divisor
    shared_mib = peak_published_bytes() / (1024.0 * 1024.0)
    progress(_format_peak_rss(peak_self, peak_child, shared_mib))


def _run_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        analyze_paths,
        default_registry,
        report_to_json,
        report_to_sarif,
    )

    registry = default_registry()
    if args.list_rules:
        for rule_id, severity, summary in registry.summaries():
            print(f"{rule_id}  [{severity:7s}] {summary}")
        return 0
    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return 2
    report = analyze_paths(args.paths, registry=registry)
    if args.lint_format == "json":
        text = json.dumps(report_to_json(report), indent=2, sort_keys=True)
    elif args.lint_format == "sarif":
        text = json.dumps(
            report_to_sarif(report, registry=registry), indent=2, sort_keys=True
        )
    else:
        lines = []
        if args.show_suppressed and report.suppressed:
            lines.extend(
                f"[suppressed] {finding.render()}"
                for finding in sorted(report.suppressed, key=lambda f: f.sort_key())
            )
        lines.append(report.render())
        text = "\n".join(lines)
    if args.lint_output:
        with open(args.lint_output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0 if report.clean else 1


def _run_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import render_fuzz_table, run_fuzz_campaign, write_fixtures

    progress = (lambda msg: None) if args.quiet else (
        # Operator-facing progress stamp, not simulation state.
        lambda msg: print(
            f"  [{time.strftime('%H:%M:%S')}] {msg}",  # reprolint: disable=R002
            file=sys.stderr,
        )
    )
    store = run_fuzz_campaign(
        args.seed,
        args.budget,
        shrink=not args.no_shrink,
        progress=progress,
    )
    # Deterministic report (and store digest) on stdout; CI byte-diffs it.
    print(render_fuzz_table(store))
    if args.json_path:
        store.save(args.json_path)
        progress(f"wrote {args.json_path}")
    if args.fixtures_dir:
        paths = write_fixtures(store, args.fixtures_dir)
        progress(f"wrote {len(paths)} fixture(s) to {args.fixtures_dir}")
    if args.fail_on_findings and store.finding_count:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except (CheckpointError, ValueError) as error:
        # Expected operator-level failures (unknown scale names, invalid
        # configurations, unusable checkpoints) become a one-line diagnostic
        # and a distinct exit code instead of a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "fuzz":
        return _run_fuzz(args)

    if getattr(args, "no_shared_plane", False):
        from repro.perf.shm import set_shared_plane_enabled

        set_shared_plane_enabled(False)

    config = _make_config(args)
    progress = (lambda msg: None) if args.quiet else (
        # Operator-facing progress stamp, not simulation state.
        lambda msg: print(
            f"  [{time.strftime('%H:%M:%S')}] {msg}",  # reprolint: disable=R002
            file=sys.stderr,
        )
    )

    if args.command == "config":
        print("Table 1. Simulation setup")
        print(config.describe())
        return 0

    if args.command == "robustness":
        from repro.experiments.robustness import (
            adversary_sweep,
            link_loss_sweep,
            node_failure_sweep,
            robustness_scale_by_name,
        )

        robust_scale = robustness_scale_by_name(args.scale)
        progress(f"running robustness sweeps at scale {robust_scale.name!r} ...")
        robust_config = _make_config(args)
        if args.nodes is None:
            robust_config = PaperConfig(
                node_count=400, master_seed=robust_config.master_seed
            )
        delivery, energy = link_loss_sweep(robust_config, scale=robust_scale)
        crash = node_failure_sweep(robust_config, scale=robust_scale)
        robustness_figures = (delivery, energy, crash)
        if args.adversary:
            progress("running adversary sweeps ...")
            robustness_figures += adversary_sweep(
                robust_config, scale=robust_scale
            )
        for fig in robustness_figures:
            print(render_figure_table(fig, precision=3))
            print()
        if args.json_path:
            _write_json(
                args.json_path,
                {fig.figure_id: fig.to_json_dict() for fig in robustness_figures},
                robust_scale.name,
                robust_config.master_seed,
                progress,
            )
        if args.perf:
            print(GLOBAL_COUNTERS.render(), file=sys.stderr)
        return 0

    if args.command == "contention":
        from repro.experiments.contention import (
            arq_ablation,
            contention_scale_by_name,
            contention_sweep,
        )

        contention_scale = contention_scale_by_name(args.scale)
        if args.nodes is not None:
            # Contended runs size the deployment from their scale preset,
            # not from Table 1 — --nodes overrides the preset.
            import dataclasses

            contention_scale = dataclasses.replace(
                contention_scale, node_count=args.nodes
            )
        progress(
            f"running contention sweeps at scale {contention_scale.name!r} ..."
        )
        contention_figures = contention_sweep(
            config,
            scale=contention_scale,
            progress=progress,
            workers=args.workers,
        )
        progress("running ARQ ablation ...")
        contention_figures["contention-arq"] = arq_ablation(
            config,
            scale=contention_scale,
            progress=progress,
            workers=args.workers,
        )
        for fig in contention_figures.values():
            print(render_figure_table(fig, precision=3))
            print()
        if args.json_path:
            _write_json(
                args.json_path,
                {name: fig.to_json_dict() for name, fig in contention_figures.items()},
                contention_scale.name,
                config.master_seed,
                progress,
            )
        if args.perf:
            print(GLOBAL_COUNTERS.render(), file=sys.stderr)
        return 0

    if args.command == "scale":
        import dataclasses

        from repro.experiments.scale import (
            render_scale_table,
            run_scale_sweep,
            scale_sweep_scale_by_name,
        )

        sweep_scale = scale_sweep_scale_by_name(args.scale)
        if args.nodes is not None:
            sweep_scale = dataclasses.replace(
                sweep_scale, node_counts=(args.nodes,)
            )
        progress(f"running large-scale sweep at preset {sweep_scale.name!r} ...")
        with StageTimer("scale-sweep", clock=time.perf_counter):
            sweep = run_scale_sweep(
                config, sweep_scale, workers=args.workers, progress=progress
            )
        print(render_scale_table(sweep))
        print(f"digest: {sweep.digest()}")
        _report_peak_rss(progress)
        if args.json_path:
            _write_json(
                args.json_path,
                {"scale-sweep": sweep.to_json_dict()},
                sweep_scale.name,
                config.master_seed,
                progress,
            )
        if args.perf:
            print(GLOBAL_COUNTERS.render(), file=sys.stderr)
        return 0

    if args.command == "sessions":
        import dataclasses

        from repro.experiments.sessions import (
            render_sessions_table,
            run_sessions_sweep,
            session_scale_by_name,
        )

        sessions_scale = session_scale_by_name(args.scale)
        if args.nodes is not None:
            sessions_scale = dataclasses.replace(
                sessions_scale, node_counts=(args.nodes,)
            )
        progress(
            f"running streaming-session sweep at preset {sessions_scale.name!r} ..."
        )
        with StageTimer("sessions-sweep", clock=time.perf_counter):
            sessions_sweep = run_sessions_sweep(
                config,
                sessions_scale,
                workers=args.workers,
                progress=progress,
                checkpoint_dir=args.checkpoint_dir,
                stop_after=args.stop_after,
            )
        # Deterministic results on stdout (CI byte-diffs them); wall-clock
        # throughput and memory telemetry on stderr only.
        print(render_sessions_table(sessions_sweep))
        print(f"digest: {sessions_sweep.digest()}")
        elapsed = GLOBAL_COUNTERS.stage_seconds("sessions-sweep")
        if elapsed > 0.0 and sessions_sweep.completed_sessions:
            progress(
                f"throughput: {sessions_sweep.completed_sessions / elapsed:.2f} "
                f"sessions/s over {elapsed:.1f}s"
            )
        _report_peak_rss(progress)
        if args.json_path:
            _write_json(
                args.json_path,
                {"sessions-sweep": sessions_sweep.to_json_dict()},
                sessions_scale.name,
                config.master_seed,
                progress,
            )
        if args.perf:
            print(GLOBAL_COUNTERS.render(), file=sys.stderr)
        return 0

    if args.command == "ablations":
        from repro.experiments.ablations import render_ablations, run_all_ablations

        progress("running ablations ...")
        ablation_config = _make_config(args)
        if args.nodes is None:
            # Ablations default to a smaller deployment than Table 1.
            ablation_config = PaperConfig(
                node_count=400, master_seed=ablation_config.master_seed
            )
        print(render_ablations(run_all_ablations(ablation_config)))
        return 0

    scale = scale_by_name(args.scale)
    figures: Dict[str, FigureResult] = {}
    all_figures = args.command in ("all", "figures")
    # Operator-layer wall clock, injected by reference: library code never
    # reads the clock itself (reprolint R002), it only ticks what it is given.
    wall_clock = time.perf_counter

    needs_sweep = args.command in ("figure11", "figure12", "figure14") or all_figures
    if needs_sweep:
        progress(f"running group-size sweep at scale {scale.name!r} ...")
        with StageTimer("group-size-sweep", clock=wall_clock):
            sweep = run_group_size_sweep(
                config, scale, progress=progress, workers=args.workers
            )
        if args.command == "figure11" or all_figures:
            figures["figure11"] = figure11(sweep)
        if args.command == "figure12" or all_figures:
            figures["figure12"] = figure12(sweep)
        if args.command == "figure14" or all_figures:
            figures["figure14"] = figure14(sweep)
    if args.command == "figure15" or all_figures:
        progress("running density sweep for figure 15 ...")
        with StageTimer("density-sweep", clock=wall_clock):
            figures["figure15"] = figure15(
                config, scale, progress=progress, workers=args.workers
            )

    for fig in figures.values():
        print(render_figure_table(fig))
        if fig.figure_id in ("figure11", "figure14"):
            print(render_ratio_summary(fig, "GMP", ["PBM", "LGS", "SMT", "GMPnr"]))
        print()

    if args.json_path:
        _write_json(
            args.json_path,
            {name: fig.to_json_dict() for name, fig in figures.items()},
            scale.name,
            config.master_seed,
            progress,
        )
    if args.perf:
        print(GLOBAL_COUNTERS.render(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
