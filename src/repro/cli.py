"""Command-line entry point: regenerate the paper's tables and figures.

Examples::

    python -m repro.cli config
    python -m repro.cli figure11 --scale quick
    python -m repro.cli all --scale paper --json results.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.experiments.config import PaperConfig, scale_by_name
from repro.experiments.figures import (
    FigureResult,
    figure11,
    figure12,
    figure14,
    figure15,
    run_group_size_sweep,
)
from repro.experiments.report import render_figure_table, render_ratio_summary


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gmp-repro",
        description=(
            "Reproduction harness for 'GMP: Distributed Geographic Multicast "
            "Routing in Wireless Sensor Networks' (ICDCS 2006)"
        ),
    )
    parser.add_argument(
        "command",
        choices=["config", "figure11", "figure12", "figure14", "figure15", "all", "ablations", "robustness"],
        help="what to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        help="statistical scale: smoke, quick, or paper (default: quick)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the master seed"
    )
    parser.add_argument(
        "--nodes", type=int, default=None, help="override the node count"
    )
    parser.add_argument(
        "--json", dest="json_path", default=None, help="also write results as JSON"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the group-size sweep (default: 1)",
    )
    return parser


def _make_config(args: argparse.Namespace) -> PaperConfig:
    kwargs = {}
    if args.seed is not None:
        kwargs["master_seed"] = args.seed
    if args.nodes is not None:
        kwargs["node_count"] = args.nodes
    return PaperConfig(**kwargs)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    config = _make_config(args)
    progress = (lambda msg: None) if args.quiet else (
        lambda msg: print(f"  [{time.strftime('%H:%M:%S')}] {msg}", file=sys.stderr)
    )

    if args.command == "config":
        print("Table 1. Simulation setup")
        print(config.describe())
        return 0

    if args.command == "robustness":
        from repro.experiments.robustness import link_loss_sweep, node_failure_sweep

        progress("running robustness sweeps ...")
        robust_config = _make_config(args)
        if args.nodes is None:
            robust_config = PaperConfig(
                node_count=400, master_seed=robust_config.master_seed
            )
        delivery, energy = link_loss_sweep(robust_config)
        crash = node_failure_sweep(robust_config)
        for fig in (delivery, energy, crash):
            print(render_figure_table(fig, precision=3))
            print()
        return 0

    if args.command == "ablations":
        from repro.experiments.ablations import render_ablations, run_all_ablations

        progress("running ablations ...")
        ablation_config = _make_config(args)
        if args.nodes is None:
            # Ablations default to a smaller deployment than Table 1.
            ablation_config = PaperConfig(
                node_count=400, master_seed=ablation_config.master_seed
            )
        print(render_ablations(run_all_ablations(ablation_config)))
        return 0

    scale = scale_by_name(args.scale)
    figures: Dict[str, FigureResult] = {}

    needs_sweep = args.command in ("figure11", "figure12", "figure14", "all")
    if needs_sweep:
        progress(f"running group-size sweep at scale {scale.name!r} ...")
        sweep = run_group_size_sweep(
            config, scale, progress=progress, workers=args.workers
        )
        if args.command in ("figure11", "all"):
            figures["figure11"] = figure11(sweep)
        if args.command in ("figure12", "all"):
            figures["figure12"] = figure12(sweep)
        if args.command in ("figure14", "all"):
            figures["figure14"] = figure14(sweep)
    if args.command in ("figure15", "all"):
        progress("running density sweep for figure 15 ...")
        figures["figure15"] = figure15(config, scale, progress=progress)

    for fig in figures.values():
        print(render_figure_table(fig))
        if fig.figure_id in ("figure11", "figure14"):
            print(render_ratio_summary(fig, "GMP", ["PBM", "LGS", "SMT", "GMPnr"]))
        print()

    if args.json_path:
        payload = {name: fig.to_json_dict() for name, fig in figures.items()}
        payload["scale"] = scale.name
        payload["master_seed"] = config.master_seed
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        progress(f"wrote {args.json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
