"""Declarative, immutable adversary schedules.

A schedule is *data*: which nodes misbehave, how, and under which seed.
It lives on :class:`~repro.engine.runner.EngineConfig` (frozen, hashable,
picklable — process-pool workers receive it with the config) and is turned
into live per-task state by :class:`repro.adversary.state.AdversaryState`.

Four behaviors, one per adversarial node:

``dropper``
    Forwards normally but silently discards packets it should deliver or
    relay — all of them, a seeded fraction (``drop_rate``), or only flows
    towards ``target_destinations`` (selective/grayhole).
``spoofer``
    Advertises a lying GPS position (true location displaced by up to
    ``spoof_offset_m``) in HELLO beacons and warm-start tables, bending
    neighbors' greedy/perimeter decisions around a phantom geometry.
``suppressor``
    Never sends HELLO beacons, so its neighbors' soft-state tables starve:
    the node keeps hearing traffic but disappears from everyone's view.
``jammer``
    Keeps the CSMA channel saturated with periodic junk frames
    (``jam_duty`` of every ``jam_period_s`` on the air).  Only meaningful
    under the contended transmission model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Tuple

DROPPER = "dropper"
SPOOFER = "spoofer"
SUPPRESSOR = "suppressor"
JAMMER = "jammer"

#: Every behavior a spec may declare, in canonical order.
BEHAVIORS: Tuple[str, ...] = (DROPPER, SPOOFER, SUPPRESSOR, JAMMER)


@dataclass(frozen=True)
class AdversarySpec:
    """One misbehaving node: who, how, and the behavior's knobs.

    Only the fields of the declared ``behavior`` are meaningful; the others
    keep their defaults so specs stay comparable and JSON round-trips stay
    exact.
    """

    node_id: int
    behavior: str
    #: Dropper: probability a matching packet is discarded (1.0 = blackhole).
    drop_rate: float = 1.0
    #: Dropper: only packets carrying one of these destinations are dropped
    #: (empty = every packet — an unselective blackhole/grayhole).
    target_destinations: Tuple[int, ...] = ()
    #: Spoofer: maximum displacement of the advertised position, meters.
    spoof_offset_m: float = 200.0
    #: Jammer: fraction of each period spent transmitting junk.
    jam_duty: float = 0.5
    #: Jammer: length of one jam cycle, seconds.
    jam_period_s: float = 2e-3
    #: Jammer: size of each junk frame, bytes.
    jam_bytes: int = 64

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"adversary node id must be >= 0, got {self.node_id}")
        if self.behavior not in BEHAVIORS:
            raise ValueError(
                f"unknown adversary behavior {self.behavior!r}; "
                f"expected one of {BEHAVIORS}"
            )
        if not 0.0 < self.drop_rate <= 1.0:
            raise ValueError(f"drop rate must be in (0, 1], got {self.drop_rate}")
        if self.spoof_offset_m <= 0.0:
            raise ValueError(
                f"spoof offset must be positive, got {self.spoof_offset_m}"
            )
        if not 0.0 < self.jam_duty <= 1.0:
            raise ValueError(f"jam duty must be in (0, 1], got {self.jam_duty}")
        if self.jam_period_s <= 0.0:
            raise ValueError(
                f"jam period must be positive, got {self.jam_period_s}"
            )
        if self.jam_bytes <= 0:
            raise ValueError(f"jam frame size must be positive, got {self.jam_bytes}")
        normalized = tuple(sorted(set(self.target_destinations)))
        if normalized != self.target_destinations:
            object.__setattr__(self, "target_destinations", normalized)
        for dest in normalized:
            if dest < 0:
                raise ValueError(f"target destination must be >= 0, got {dest}")

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-exact serialization (round-trips through :meth:`from_json_dict`)."""
        return {
            "node_id": self.node_id,
            "behavior": self.behavior,
            "drop_rate": self.drop_rate,
            "target_destinations": list(self.target_destinations),
            "spoof_offset_m": self.spoof_offset_m,
            "jam_duty": self.jam_duty,
            "jam_period_s": self.jam_period_s,
            "jam_bytes": self.jam_bytes,
        }

    @staticmethod
    def from_json_dict(data: Mapping[str, Any]) -> "AdversarySpec":
        return AdversarySpec(
            node_id=int(data["node_id"]),
            behavior=str(data["behavior"]),
            drop_rate=float(data["drop_rate"]),
            target_destinations=tuple(int(d) for d in data["target_destinations"]),
            spoof_offset_m=float(data["spoof_offset_m"]),
            jam_duty=float(data["jam_duty"]),
            jam_period_s=float(data["jam_period_s"]),
            jam_bytes=int(data["jam_bytes"]),
        )


@dataclass(frozen=True)
class AdversarySchedule:
    """The full adversarial cast of one run, plus the seed of their choices.

    Specs are normalized to ascending ``node_id`` order so two schedules
    listing the same cast compare (and hash, and digest) equal.  At most
    one behavior per node: adversaries compose across nodes, not within.
    """

    specs: Tuple[AdversarySpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.specs, key=lambda spec: spec.node_id))
        if ordered != self.specs:
            object.__setattr__(self, "specs", ordered)
        seen = set()
        for spec in ordered:
            if spec.node_id in seen:
                raise ValueError(
                    f"node {spec.node_id} declared adversarial more than once"
                )
            seen.add(spec.node_id)

    @property
    def enabled(self) -> bool:
        """Whether any adversary is scheduled at all (the A/B switch)."""
        return bool(self.specs)

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(spec.node_id for spec in self.specs)

    def of_behavior(self, behavior: str) -> Tuple[AdversarySpec, ...]:
        """The specs declaring ``behavior``, in node-id order."""
        if behavior not in BEHAVIORS:
            raise ValueError(f"unknown adversary behavior {behavior!r}")
        return tuple(spec for spec in self.specs if spec.behavior == behavior)

    @property
    def has_jammers(self) -> bool:
        return any(spec.behavior == JAMMER for spec in self.specs)

    def without_node(self, node_id: int) -> "AdversarySchedule":
        """A copy with ``node_id``'s spec removed (used by the shrinker)."""
        return replace(
            self,
            specs=tuple(s for s in self.specs if s.node_id != node_id),
        )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "specs": [spec.to_json_dict() for spec in self.specs],
        }

    @staticmethod
    def from_json_dict(data: Mapping[str, Any]) -> "AdversarySchedule":
        return AdversarySchedule(
            specs=tuple(
                AdversarySpec.from_json_dict(item) for item in data["specs"]
            ),
            seed=int(data["seed"]),
        )


#: Shared immutable "no adversaries" default, mirroring
#: ``DEFAULT_ENGINE_CONFIG``: the engine checks ``schedule.enabled`` and
#: stays on its benign code path when this instance is in effect.
EMPTY_ADVERSARY_SCHEDULE = AdversarySchedule()
