"""Live adversary state: a schedule realized against one network and scope.

One :class:`AdversaryState` serves one default-model task or one contended
run (the ``scope`` label keeps their derived seeds apart, exactly like the
engine's per-task loss streams).  It answers the three questions the engine
seams ask — *does this node swallow this packet*, *where does this node
claim to be*, and *which nodes never beacon* — and schedules jammer traffic
on the contended channel.  All randomness flows through
:func:`~repro.simkit.rng.derive_seed` from the schedule's own seed, so
adversarial runs replay bit-identically and never perturb benign streams.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Optional

import numpy as np

from repro.adversary.schedule import (
    DROPPER,
    JAMMER,
    SPOOFER,
    SUPPRESSOR,
    AdversarySchedule,
    AdversarySpec,
)
from repro.geometry import Point
from repro.linklayer.neighbors import BeaconNodeView
from repro.network.graph import WirelessNetwork
from repro.packets import MulticastPacket
from repro.routing.base import NodeView
from repro.simkit.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an eager cycle
    from repro.linklayer.mac import LinkLayer

#: Extra sink for counter bumps: ``(key, amount)``.
CountHook = Callable[[str, int], None]


class AdversaryState:
    """Per-run realization of an :class:`AdversarySchedule`.

    Args:
        schedule: The declared cast; must be non-empty (the engine keeps
            its benign code path when the schedule is empty and never
            constructs a state).
        network: The deployment the cast acts in; every spec's node id must
            name a node.
        scope: Label separating this realization's seed derivations from
            other tasks/runs of the same schedule (e.g. ``("task", 7)``).
        on_count: Optional extra sink for counter bumps — the contended
            engine passes a hook into :class:`~repro.linklayer.stats.LinkStats`
            so ``adv.*`` counters ride the normal link-stats plumbing.
    """

    def __init__(
        self,
        schedule: AdversarySchedule,
        network: WirelessNetwork,
        scope: object,
        on_count: Optional[CountHook] = None,
    ) -> None:
        if not schedule.enabled:
            raise ValueError("AdversaryState needs a non-empty schedule")
        for spec in schedule.specs:
            if not (0 <= spec.node_id < network.node_count):
                raise ValueError(
                    f"adversary node {spec.node_id} is not a node of the network"
                )
        self.schedule = schedule
        self._network = network
        self._scope = scope
        self._on_count = on_count
        #: Cumulative behavior counters (``drops``, ``jam_frames``, ...).
        self.counters: Dict[str, int] = {}
        self._droppers: Dict[int, AdversarySpec] = {
            spec.node_id: spec for spec in schedule.of_behavior(DROPPER)
        }
        self._drop_rngs: Dict[int, np.random.Generator] = {
            node_id: np.random.default_rng(
                derive_seed(schedule.seed, "adv", "drop", node_id, scope)
            )
            for node_id in sorted(self._droppers)
        }
        self.suppressed: FrozenSet[int] = frozenset(
            spec.node_id for spec in schedule.of_behavior(SUPPRESSOR)
        )
        self._advertised: Dict[int, Point] = {}
        for spec in schedule.of_behavior(SPOOFER):
            rng = np.random.default_rng(
                derive_seed(schedule.seed, "adv", "spoof", spec.node_id, scope)
            )
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            radius = spec.spoof_offset_m * float(rng.uniform(0.5, 1.0))
            truth = network.location_of(spec.node_id)
            self._advertised[spec.node_id] = Point(
                truth.x + radius * math.cos(angle),
                truth.y + radius * math.sin(angle),
            )
        self._view_memo: Dict[int, NodeView] = {}

    # ----------------------------------------------------------- counters

    def bump(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount
        if self._on_count is not None:
            self._on_count(key, amount)

    def perf_counters(self) -> Dict[str, float]:
        """The behavior counters as digest-excluded ``adv.*`` perf keys."""
        return {f"adv.{key}": float(self.counters[key]) for key in sorted(self.counters)}

    # ----------------------------------------------------------- dropping

    def should_drop(self, node_id: int, packet: MulticastPacket) -> bool:
        """Whether the dropper at ``node_id`` (if any) swallows ``packet``.

        Checked at packet arrival, *before* delivery bookkeeping: a dropper
        that is itself a group member suppresses its own delivery too.
        """
        spec = self._droppers.get(node_id)
        if spec is None:
            return False
        if spec.target_destinations and not any(
            d in spec.target_destinations for d in packet.destination_ids
        ):
            return False
        if spec.drop_rate >= 1.0:
            dropped = True
        else:
            dropped = bool(
                self._drop_rngs[node_id].random() < spec.drop_rate
            )
        if dropped:
            self.bump("drops")
        return dropped

    # ----------------------------------------------------------- spoofing

    def advertised_location(self, node_id: int) -> Point:
        """Where ``node_id`` *claims* to be (truth unless it spoofs)."""
        found = self._advertised.get(node_id)
        if found is not None:
            return found
        return self._network.location_of(node_id)

    @property
    def distorts_views(self) -> bool:
        """Whether neighbor views differ from the graph oracle at all."""
        return bool(self._advertised) or bool(self.suppressed)

    def wrap_view(self, view: NodeView) -> NodeView:
        """The adversarially distorted routing view of ``view``'s node.

        Suppressors vanish from the neighbor set (their beacons were never
        heard) and spoofers appear at their advertised lie.  Used by the
        default model and the beacon-less contended oracle; with beacons on,
        the distortion flows through the beacon process itself instead.
        """
        if not self.distorts_views:
            return view
        node_id = view.node_id
        cached = self._view_memo.get(node_id)
        if cached is not None:
            return cached
        ids = tuple(
            neighbor
            for neighbor in view.neighbor_ids
            if neighbor not in self.suppressed
        )
        locations = {
            neighbor: self.advertised_location(neighbor) for neighbor in ids
        }
        wrapped = BeaconNodeView(self._network, node_id, ids, locations)
        self._view_memo[node_id] = wrapped
        return wrapped

    # ------------------------------------------------------------ jamming

    def start_jammers(
        self,
        link: "LinkLayer",
        horizon_s: float,
        failed_node_ids: FrozenSet[int],
    ) -> int:
        """Schedule every live jammer's duty cycle on the contended channel.

        Each jammer keys junk frames for ``jam_duty`` of every
        ``jam_period_s``, phase-offset by its own seeded draw; crashed
        jammers stay silent.  Returns the total number of jam frames
        scheduled over the horizon (the host widens its event budget by
        this much).
        """
        scheduled = 0
        for spec in self.schedule.of_behavior(JAMMER):
            if spec.node_id in failed_node_ids:
                continue
            rng = np.random.default_rng(
                derive_seed(self.schedule.seed, "adv", "jam", spec.node_id, self._scope)
            )
            phase = float(rng.uniform(0.0, spec.jam_period_s))
            on_air = spec.jam_duty * spec.jam_period_s
            ticks = int(max(horizon_s - phase, 0.0) / spec.jam_period_s) + 1
            scheduled += ticks
            self._schedule_jam(link, spec, phase, on_air, horizon_s)
        return scheduled

    def _schedule_jam(
        self,
        link: "LinkLayer",
        spec: AdversarySpec,
        at_s: float,
        on_air_s: float,
        horizon_s: float,
    ) -> None:
        if at_s > horizon_s:
            return

        def fire() -> None:
            # ``LinkLayer.jam`` counts the frame in the stats' adv bucket.
            link.jam(spec.node_id, on_air_s, spec.jam_bytes)
            self._schedule_jam(
                link, spec, at_s + spec.jam_period_s, on_air_s, horizon_s
            )

        link.simulator.schedule_at(at_s, fire, label=f"jam@{spec.node_id}")
