"""Pluggable adversarial node behaviors for robustness experiments.

The paper evaluates GMP under benign conditions only; this package supplies
the misbehaving nodes — selective packet droppers, location spoofers,
beacon suppressors and CSMA jammers — that the fuzzer
(:mod:`repro.fuzz`) and the ``repro robustness --adversary`` sweep use to
stress the protocol's "stateless delivery keeps working" claim.

Behaviors are declared as an immutable :class:`AdversarySchedule` carried
on :class:`~repro.engine.runner.EngineConfig` and realized per task/run as
an :class:`AdversaryState`.  Everything is seeded through
:func:`~repro.simkit.rng.derive_seed`, so adversarial runs are as
replayable as benign ones, and an *empty* schedule leaves the engine on
its exact pre-adversary code path (A/B switch contract: trace digests are
byte-identical with adversaries disabled).
"""

from repro.adversary.schedule import (
    BEHAVIORS,
    DROPPER,
    EMPTY_ADVERSARY_SCHEDULE,
    JAMMER,
    SPOOFER,
    SUPPRESSOR,
    AdversarySchedule,
    AdversarySpec,
)
from repro.adversary.state import AdversaryState

__all__ = [
    "AdversarySchedule",
    "AdversarySpec",
    "AdversaryState",
    "BEHAVIORS",
    "DROPPER",
    "EMPTY_ADVERSARY_SCHEDULE",
    "JAMMER",
    "SPOOFER",
    "SUPPRESSOR",
]
